// Head-to-head: gpu vs gpu_async (the overlapped batch pipeline).
//
// Two workloads at matched |D|:
//   * the fig5-style uniform 2-D "2M" dataset (the paper's canonical
//     synthetic workload), and
//   * a strongly skewed IPPP dataset (inhomogeneous Poisson point
//     process, after Hohmann 2019) where a few dense cores dominate the
//     result set — the stress case for batch load balance, which the
//     async pipeline's work queue should absorb and the barrier-per-round
//     scheme cannot.
// gpu_async sweeps streams x assembly_threads; streams=1/assembly=1
// degenerates to the serial schedule. SJ_SCALE scales |D| as usual.
//
// Output: the usual CSV under SJ_RESULTS_DIR plus BENCH_async.json (path
// overridable via SJ_BENCH_JSON) — the perf-trajectory artefact tracking
// the pipeline overlap AND the host assembly path (the pooled segment
// staging buffers show up here: every configuration's transfer/assembly
// tail crosses them).
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  std::string algo;
  int streams = 0;
  int assembly = 0;
  double seconds = 0.0;
  std::uint64_t pairs = 0;
  std::uint64_t retries = 0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    {
      const auto& info = datasets::info("Syn2D2M");
      Dataset d = datasets::make("Syn2D2M", scale);
      const double eps = datasets::scaled_eps(info, d.size())[2];  // mid
      workloads.push_back({"Syn2D2M", std::move(d), eps});
    }
    {
      const auto n = static_cast<std::size_t>(2'000'000 * scale);
      Dataset d = datagen::ippp(n, 2, 64.0, 4242);
      d.set_name("IPPP2D2M");
      workloads.push_back({"IPPP2D2M", std::move(d), 0.15});
    }

    const auto& registry = api::BackendRegistry::instance();
    TextTable t({"workload", "algo", "streams", "assembly", "time (s)",
                 "pairs", "retries", "speedup vs gpu"});
    csv::Table out({"workload", "algo", "streams", "assembly_threads",
                    "seconds", "pairs", "overflow_retries", "speedup"});
    for (const auto& w : workloads) {
      const auto gpu = registry.at("gpu").run(w.data, w.eps);
      rows.push_back({w.name, "gpu", 3, 0, gpu.stats.seconds,
                      gpu.pairs.size(),
                      static_cast<std::uint64_t>(
                          gpu.stats.native_value("overflow_retries")),
                      1.0});
      t.add_row({w.name, "gpu", "3", "-", csv::fmt(gpu.stats.seconds),
                 std::to_string(gpu.pairs.size()),
                 std::to_string(static_cast<std::uint64_t>(
                     gpu.stats.native_value("overflow_retries"))),
                 "1.00"});
      out.add_row({w.name, "gpu", "3", "", csv::fmt(gpu.stats.seconds),
                   std::to_string(gpu.pairs.size()),
                   std::to_string(static_cast<std::uint64_t>(
                       gpu.stats.native_value("overflow_retries"))),
                   "1.0"});

      for (int streams : {1, 2, 4}) {
        for (int assembly : {1, 2}) {
          api::RunConfig config;
          config.extra["streams"] = std::to_string(streams);
          config.extra["assembly_threads"] = std::to_string(assembly);
          const auto r = registry.at("gpu_async").run(w.data, w.eps, config);
          const double speedup = r.stats.seconds > 0.0
                                     ? gpu.stats.seconds / r.stats.seconds
                                     : 0.0;
          rows.push_back({w.name, "gpu_async", streams, assembly,
                          r.stats.seconds, r.pairs.size(),
                          static_cast<std::uint64_t>(
                              r.stats.native_value("overflow_retries")),
                          speedup});
          t.add_row({w.name, "gpu_async", std::to_string(streams),
                     std::to_string(assembly), csv::fmt(r.stats.seconds),
                     std::to_string(r.pairs.size()),
                     std::to_string(static_cast<std::uint64_t>(
                         r.stats.native_value("overflow_retries"))),
                     csv::fmt(speedup)});
          out.add_row({w.name, "gpu_async", std::to_string(streams),
                       std::to_string(assembly), csv::fmt(r.stats.seconds),
                       std::to_string(r.pairs.size()),
                       std::to_string(static_cast<std::uint64_t>(
                           r.stats.native_value("overflow_retries"))),
                       csv::fmt(speedup)});
        }
      }
    }
    std::cout << "\n== ablation: gpu vs gpu_async (overlapped pipeline) ==\n";
    t.print(std::cout);
    std::cout << "(gpu_async merges by batch key, so every configuration "
                 "returns the identical pair set)\n";
    out.write(Collector::results_dir() + "/ablation_async.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_async.json: the trajectory metric is the geomean over
  // workloads of the BEST gpu_async configuration's speedup vs gpu.
  std::map<std::string, double> best;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    if (r.algo == "gpu_async") {
      best[r.workload] = std::max(best[r.workload], r.speedup);
    }
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("algo", r.algo)
                           .field("streams", r.streams)
                           .field("assembly_threads", r.assembly)
                           .field("seconds", r.seconds)
                           .field("pairs", r.pairs)
                           .field("overflow_retries", r.retries)
                           .field("speedup", r.speedup)
                           .str());
  }
  std::vector<double> speedups;
  for (const auto& [workload, s] : best) speedups.push_back(s);
  write_bench_json("ablation_async", "BENCH_async.json", geomean(speedups),
                   row_json, "geomean_best_async_speedup_vs_gpu");
  return 0;
}
