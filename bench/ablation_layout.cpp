// Head-to-head: the legacy point-centric layout vs the cell-major layout
// + cell-centric kernel, on the same grid index and batching scheme.
//
// Workloads:
//   * Syn{2..6}D2M — the paper's uniform synthetic family across the full
//     dimensionality sweep (mid eps of each dataset's bench sweep), and
//   * a strongly skewed IPPP dataset where a few dense cores dominate the
//     result volume — the case the per-cell work-estimate batching is
//     built for.
//
// Output: the usual CSV under SJ_RESULTS_DIR plus BENCH_layout.json (path
// overridable via SJ_BENCH_JSON) — the perf-trajectory artefact CI
// uploads. With SJ_SMOKE_CHECK=1 the process exits non-zero when the
// geometric-mean speedup of cell over legacy falls below 0.9x (a >10%
// regression), which is the CI bench-smoke gate.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  int dim = 0;
  std::size_t n = 0;
  double eps = 0.0;
  std::string algo;
  double legacy_seconds = 0.0;
  double cell_seconds = 0.0;
  std::uint64_t pairs = 0;
  double speedup = 0.0;
};

double run_layout(const sj::Dataset& d, double eps, const std::string& algo,
                  const std::string& layout, std::uint64_t& pairs_out) {
  sj::api::RunConfig config;
  config.extra["layout"] = layout;
  const auto r =
      sj::api::BackendRegistry::instance().at(algo).run(d, eps, config);
  pairs_out = r.pairs.size();
  return r.stats.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    for (int dim = 2; dim <= 6; ++dim) {
      const std::string name = "Syn" + std::to_string(dim) + "D2M";
      const auto& info = datasets::info(name);
      Dataset d = datasets::make(name, scale);
      const double eps = datasets::scaled_eps(info, d.size())[2];  // mid
      workloads.push_back({name, std::move(d), eps});
    }
    {
      const auto n = static_cast<std::size_t>(2'000'000 * scale);
      Dataset d = datagen::ippp(n, 2, 64.0, 4242);
      d.set_name("IPPP2D2M");
      workloads.push_back({"IPPP2D2M", std::move(d), 0.15});
    }

    TextTable t({"workload", "dim", "algo", "eps", "legacy (s)", "cell (s)",
                 "speedup", "pairs"});
    csv::Table out({"workload", "dim", "n", "eps", "algo", "legacy_seconds",
                    "cell_seconds", "speedup", "pairs"});
    for (const auto& w : workloads) {
      for (const std::string algo : {"gpu", "gpu_unicomp"}) {
        Row row;
        row.workload = w.name;
        row.dim = w.data.dim();
        row.n = w.data.size();
        row.eps = w.eps;
        row.algo = algo;
        std::uint64_t legacy_pairs = 0;
        row.legacy_seconds =
            run_layout(w.data, w.eps, algo, "legacy", legacy_pairs);
        row.cell_seconds = run_layout(w.data, w.eps, algo, "cell", row.pairs);
        if (row.pairs != legacy_pairs) {
          std::cerr << "FATAL: layouts disagree on " << w.name << "/" << algo
                    << ": legacy=" << legacy_pairs << " cell=" << row.pairs
                    << "\n";
          std::exit(1);
        }
        row.speedup = row.cell_seconds > 0.0
                          ? row.legacy_seconds / row.cell_seconds
                          : 0.0;
        t.add_row({row.workload, std::to_string(row.dim), row.algo,
                   csv::fmt(row.eps), csv::fmt(row.legacy_seconds),
                   csv::fmt(row.cell_seconds), csv::fmt(row.speedup),
                   std::to_string(row.pairs)});
        out.add_row({row.workload, std::to_string(row.dim),
                     std::to_string(row.n), csv::fmt(row.eps), row.algo,
                     csv::fmt(row.legacy_seconds), csv::fmt(row.cell_seconds),
                     csv::fmt(row.speedup), std::to_string(row.pairs)});
        rows.push_back(row);
      }
    }
    std::cout << "\n== ablation: legacy vs cell-major layout ==\n";
    t.print(std::cout);
    std::cout << "(both layouts return identical pair sets; asserted above "
                 "and by tests/api/test_backend_parity.cpp)\n";
    out.write(Collector::results_dir() + "/ablation_layout.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_layout.json + the CI smoke gate (>10% regression fails).
  std::vector<double> speedups;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    speedups.push_back(r.speedup);
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("dim", r.dim)
                           .field("n", static_cast<std::uint64_t>(r.n))
                           .field("eps", r.eps)
                           .field("algo", r.algo)
                           .field("legacy_seconds", r.legacy_seconds)
                           .field("cell_seconds", r.cell_seconds)
                           .field("speedup", r.speedup)
                           .field("pairs", r.pairs)
                           .str());
  }
  const double g = geomean(speedups);
  write_bench_json("ablation_layout", "BENCH_layout.json", g, row_json);
  return smoke_check("ablation_layout", g);
}
