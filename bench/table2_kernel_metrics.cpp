// Table II: kernel metrics of GPU-SJ without and with UNICOMP on SW2DA,
// SDSS2DA (response-time ratio < 2 in the paper) and Syn5D2M, Syn6D2M
// (ratio > 2): theoretical occupancy (register model) and modelled
// unified-cache bandwidth utilisation (L1 cache simulator), with the
// with/without ratios the paper uses to explain UNICOMP's behaviour.
#include <iostream>

#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "core/self_join.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    struct Row {
      const char* dataset;
      std::size_t eps_index;  // into the bench sweep (paper: 0.3 / 0.3 / 8 / 8)
    };
    // Paper Table II uses eps 0.3, 0.3, 8, 8 — the first sweep point for
    // the real-world pairs and the fourth for the synthetic ones.
    const std::vector<Row> rows{{"SW2DA", 0}, {"SDSS2DA", 0},
                                {"Syn5D2M", 3}, {"Syn6D2M", 3}};

    TextTable t({"dataset", "eps", "ratio resp. time", "occupancy",
                 "cache BW (GB/s)", "occupancy (unicomp)",
                 "cache BW (unicomp)", "ratio occ.", "ratio cache"});
    csv::Table out({"dataset", "eps", "resp_ratio", "occ_base", "cache_base",
                    "occ_uni", "cache_uni", "occ_ratio", "cache_ratio"});

    const double scale = env_scale();
    for (const auto& row : rows) {
      const auto& info = datasets::info(row.dataset);
      const Dataset d = datasets::make(row.dataset, scale);
      const double eps =
          datasets::scaled_eps(info, d.size())[row.eps_index];

      GpuSelfJoinOptions base_opt;
      base_opt.unicomp = false;
      base_opt.collect_metrics = true;
      GpuSelfJoinOptions uni_opt;
      uni_opt.unicomp = true;
      uni_opt.collect_metrics = true;

      const auto base = GpuSelfJoin(base_opt).run(d, eps);
      const auto uni = GpuSelfJoin(uni_opt).run(d, eps);

      const double resp_ratio =
          base.stats.total_seconds / uni.stats.total_seconds;
      const double occ_ratio = uni.stats.occupancy / base.stats.occupancy;
      const double cache_ratio =
          base.stats.metrics.cache_bw_gbs > 0.0
              ? uni.stats.metrics.cache_bw_gbs /
                    base.stats.metrics.cache_bw_gbs
              : 0.0;

      t.add_row({row.dataset, csv::fmt(eps), csv::fmt(resp_ratio),
                 csv::fmt(base.stats.occupancy * 100) + "%",
                 csv::fmt(base.stats.metrics.cache_bw_gbs),
                 csv::fmt(uni.stats.occupancy * 100) + "%",
                 csv::fmt(uni.stats.metrics.cache_bw_gbs),
                 csv::fmt(occ_ratio), csv::fmt(cache_ratio)});
      out.add_row({row.dataset, csv::fmt(eps), csv::fmt(resp_ratio),
                   csv::fmt(base.stats.occupancy),
                   csv::fmt(base.stats.metrics.cache_bw_gbs),
                   csv::fmt(uni.stats.occupancy),
                   csv::fmt(uni.stats.metrics.cache_bw_gbs),
                   csv::fmt(occ_ratio), csv::fmt(cache_ratio)});
    }
    std::cout << "\n== Table II: kernel metrics without/with UNICOMP ==\n";
    t.print(std::cout);
    std::cout << "(paper occupancies: 100%/75% at 2-D, 62.5%/50% at 5-6-D;\n"
                 " paper cache ratios: ~0.75 on 2-D real data, 1.6-1.9 on\n"
                 " 5-6-D synthetic data)\n";
    out.write(Collector::results_dir() + "/table2.csv");
  });
}
