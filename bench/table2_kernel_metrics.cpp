// Table II: kernel metrics of GPU-SJ without and with UNICOMP on SW2DA,
// SDSS2DA (response-time ratio < 2 in the paper) and Syn5D2M, Syn6D2M
// (ratio > 2): theoretical occupancy (register model) and modelled
// unified-cache bandwidth utilisation (L1 cache simulator), with the
// with/without ratios the paper uses to explain UNICOMP's behaviour.
#include <iostream>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    struct Row {
      const char* dataset;
      std::size_t eps_index;  // into the bench sweep (paper: 0.3 / 0.3 / 8 / 8)
    };
    // Paper Table II uses eps 0.3, 0.3, 8, 8 — the first sweep point for
    // the real-world pairs and the fourth for the synthetic ones.
    const std::vector<Row> rows{{"SW2DA", 0}, {"SDSS2DA", 0},
                                {"Syn5D2M", 3}, {"Syn6D2M", 3}};

    TextTable t({"dataset", "eps", "ratio resp. time", "occupancy",
                 "cache BW (GB/s)", "occupancy (unicomp)",
                 "cache BW (unicomp)", "ratio occ.", "ratio cache"});
    csv::Table out({"dataset", "eps", "resp_ratio", "occ_base", "cache_base",
                    "occ_uni", "cache_uni", "occ_ratio", "cache_ratio"});

    const double scale = env_scale();
    for (const auto& row : rows) {
      const auto& info = datasets::info(row.dataset);
      const Dataset d = datasets::make(row.dataset, scale);
      const double eps =
          datasets::scaled_eps(info, d.size())[row.eps_index];

      const auto& registry = api::BackendRegistry::instance();
      api::RunConfig config;
      config.collect_metrics = true;
      // Table II reproduces the paper's POINT-centric kernel: the
      // occupancy model (self_join_regs_per_thread) and the published
      // cache numbers describe that kernel, so the cell-major layout is
      // pinned off here (bench_ablation_layout covers the comparison).
      config.extra["layout"] = "legacy";

      const auto base = registry.at("gpu").run(d, eps, config);
      const auto uni = registry.at("gpu_unicomp").run(d, eps, config);

      const double base_occ = base.stats.native_value("occupancy");
      const double uni_occ = uni.stats.native_value("occupancy");
      const double base_bw = base.stats.native_value("cache_bw_gbs");
      const double uni_bw = uni.stats.native_value("cache_bw_gbs");

      const double resp_ratio = base.stats.seconds / uni.stats.seconds;
      const double occ_ratio = uni_occ / base_occ;
      const double cache_ratio = base_bw > 0.0 ? uni_bw / base_bw : 0.0;

      t.add_row({row.dataset, csv::fmt(eps), csv::fmt(resp_ratio),
                 csv::fmt(base_occ * 100) + "%", csv::fmt(base_bw),
                 csv::fmt(uni_occ * 100) + "%", csv::fmt(uni_bw),
                 csv::fmt(occ_ratio), csv::fmt(cache_ratio)});
      out.add_row({row.dataset, csv::fmt(eps), csv::fmt(resp_ratio),
                   csv::fmt(base_occ), csv::fmt(base_bw), csv::fmt(uni_occ),
                   csv::fmt(uni_bw), csv::fmt(occ_ratio),
                   csv::fmt(cache_ratio)});
    }
    std::cout << "\n== Table II: kernel metrics without/with UNICOMP ==\n";
    t.print(std::cout);
    std::cout << "(paper occupancies: 100%/75% at 2-D, 62.5%/50% at 5-6-D;\n"
                 " paper cache ratios: ~0.75 on 2-D real data, 1.6-1.9 on\n"
                 " 5-6-D synthetic data)\n";
    out.write(Collector::results_dir() + "/table2.csv");
  });
}
