// Head-to-head for the query/data join: the legacy point-centric search
// vs the cell-major indexed side + query-group kernel, on the same grid
// index and batching scheme.
//
// Workloads:
//   * uniform queries over uniform data (the baseline regime),
//   * strongly skewed IPPP queries over uniform data — the case the
//     per-group weighted batching is built for (most of the result
//     volume concentrated in a few query home cells), and
//   * uniform queries over IPPP data (dense indexed cells, long
//     contiguous scans).
//
// Output: the usual CSV under SJ_RESULTS_DIR plus BENCH_join.json (path
// overridable via SJ_BENCH_JSON) — the perf-trajectory artefact CI
// uploads. With SJ_SMOKE_CHECK=1 the process exits non-zero when the
// geometric-mean speedup of cell over legacy falls below 0.9x (a >10%
// regression), which is the CI bench-smoke gate.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  std::size_t nq = 0;
  std::size_t nd = 0;
  double eps = 0.0;
  double legacy_seconds = 0.0;
  double cell_seconds = 0.0;
  std::uint64_t pairs = 0;
  double query_groups = 0.0;
  double speedup = 0.0;
};

double run_layout(const sj::Dataset& q, const sj::Dataset& d, double eps,
                  const std::string& layout, std::uint64_t& pairs_out,
                  double& groups_out) {
  sj::api::RunConfig config;
  config.extra["layout"] = layout;
  const auto& backend = sj::api::BackendRegistry::instance().at(
      "gpu", sj::api::Operation::kJoin);
  const auto r = backend.join(q, d, eps, config);
  pairs_out = r.pairs.size();
  groups_out = r.stats.native_value("query_groups");
  return r.stats.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset queries;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    {
      const auto nd = static_cast<std::size_t>(2'000'000 * scale);
      const auto nq = static_cast<std::size_t>(1'000'000 * scale);
      workloads.push_back({"UniQ-UniD",
                           datagen::uniform(nq, 2, 0.0, 1000.0, 5001),
                           datagen::uniform(nd, 2, 0.0, 1000.0, 5002),
                           1.0});
      workloads.push_back({"IpppQ-UniD",
                           datagen::ippp(nq, 2, 64.0, 5003),
                           datagen::uniform(nd, 2, 0.0, 64.0, 5004),
                           0.15});
      workloads.push_back({"UniQ-IpppD",
                           datagen::uniform(nq, 2, 0.0, 64.0, 5005),
                           datagen::ippp(nd, 2, 64.0, 5006),
                           0.15});
    }

    TextTable t({"workload", "|Q|", "|D|", "eps", "legacy (s)", "cell (s)",
                 "speedup", "groups", "pairs"});
    csv::Table out({"workload", "nq", "nd", "eps", "legacy_seconds",
                    "cell_seconds", "speedup", "query_groups", "pairs"});
    for (const auto& w : workloads) {
      Row row;
      row.workload = w.name;
      row.nq = w.queries.size();
      row.nd = w.data.size();
      row.eps = w.eps;
      std::uint64_t legacy_pairs = 0;
      double unused_groups = 0.0;
      row.legacy_seconds = run_layout(w.queries, w.data, w.eps, "legacy",
                                      legacy_pairs, unused_groups);
      row.cell_seconds = run_layout(w.queries, w.data, w.eps, "cell",
                                    row.pairs, row.query_groups);
      if (row.pairs != legacy_pairs) {
        std::cerr << "FATAL: layouts disagree on " << w.name
                  << ": legacy=" << legacy_pairs << " cell=" << row.pairs
                  << "\n";
        std::exit(1);
      }
      row.speedup = row.cell_seconds > 0.0
                        ? row.legacy_seconds / row.cell_seconds
                        : 0.0;
      t.add_row({row.workload, std::to_string(row.nq),
                 std::to_string(row.nd), csv::fmt(row.eps),
                 csv::fmt(row.legacy_seconds), csv::fmt(row.cell_seconds),
                 csv::fmt(row.speedup),
                 std::to_string(static_cast<std::uint64_t>(row.query_groups)),
                 std::to_string(row.pairs)});
      out.add_row({row.workload, std::to_string(row.nq),
                   std::to_string(row.nd), csv::fmt(row.eps),
                   csv::fmt(row.legacy_seconds), csv::fmt(row.cell_seconds),
                   csv::fmt(row.speedup), csv::fmt(row.query_groups),
                   std::to_string(row.pairs)});
      rows.push_back(row);
    }
    std::cout << "\n== ablation: query/data join, legacy vs cell-major "
                 "indexed side ==\n";
    t.print(std::cout);
    std::cout << "(both layouts return identical pair sets; asserted above "
                 "and by tests/core/test_join.cpp)\n";
    out.write(Collector::results_dir() + "/ablation_join.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_join.json + the CI smoke gate (>10% regression fails).
  std::vector<double> speedups;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    speedups.push_back(r.speedup);
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("nq", static_cast<std::uint64_t>(r.nq))
                           .field("nd", static_cast<std::uint64_t>(r.nd))
                           .field("eps", r.eps)
                           .field("legacy_seconds", r.legacy_seconds)
                           .field("cell_seconds", r.cell_seconds)
                           .field("speedup", r.speedup)
                           .field("query_groups", r.query_groups)
                           .field("pairs", r.pairs)
                           .str());
  }
  const double g = geomean(speedups);
  write_bench_json("ablation_join", "BENCH_join.json", g, row_json);
  return smoke_check("ablation_join", g);
}
