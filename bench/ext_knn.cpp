// Extension bench (paper future work, Section VII): grid-based kNN vs a
// brute-force kNN scan — candidates examined per query and wall-clock
// across dimensions and k. Dispatches through the unified backend
// registry's knn facet.
#include <algorithm>
#include <iostream>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/distance.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "harness/bench_common.hpp"

namespace {

double brute_knn_seconds(const sj::Dataset& d, int k) {
  sj::Timer t;
  std::vector<double> d2(d.size());
  double checksum = 0.0;
  // Scan a subsample of queries and extrapolate — the full quadratic scan
  // would dominate the whole bench suite.
  const std::size_t step = std::max<std::size_t>(d.size() / 200, 1);
  std::size_t queries = 0;
  for (std::size_t q = 0; q < d.size(); q += step, ++queries) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      d2[i] = sj::sq_dist(d.pt(q), d.pt(i), d.dim());
    }
    std::nth_element(d2.begin(), d2.begin() + k, d2.end());
    checksum += d2[static_cast<std::size_t>(k)];
  }
  const double sampled = t.seconds();
  if (checksum < 0) std::cout << "";  // keep the work observable
  return sampled * static_cast<double>(d.size()) /
         static_cast<double>(std::max<std::size_t>(queries, 1));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    TextTable t({"dim", "k", "grid kNN (s)", "brute est. (s)",
                 "candidates/query", "rings/query"});
    csv::Table out({"dim", "k", "grid_seconds", "brute_seconds",
                    "candidates_per_query", "rings_per_query"});
    const auto scale = env_scale();
    const auto n = static_cast<std::size_t>(20000 * scale);
    const auto& backend = api::BackendRegistry::instance().at(
        "gpu", api::Operation::kKnn);
    for (int dim : {2, 3, 4, 6}) {
      const auto d = datagen::uniform(n, dim, 0.0, 100.0, 800 + dim);
      for (int k : {4, 16}) {
        const auto r = backend.self_knn(d, k);
        const double brute = brute_knn_seconds(d, k);
        const double cand =
            static_cast<double>(r.stats.distance_calcs) /
            static_cast<double>(d.size());
        const double rings = r.stats.native_value("rings_expanded") /
                             static_cast<double>(d.size());
        t.add_row({std::to_string(dim), std::to_string(k),
                   csv::fmt(r.stats.seconds), csv::fmt(brute),
                   csv::fmt(cand), csv::fmt(rings)});
        out.add_row({std::to_string(dim), std::to_string(k),
                     csv::fmt(r.stats.seconds), csv::fmt(brute),
                     csv::fmt(cand), csv::fmt(rings)});
      }
    }
    std::cout << "\n== extension: grid kNN vs brute-force kNN ==\n";
    t.print(std::cout);
    out.write(Collector::results_dir() + "/ext_knn.csv");
  });
}
