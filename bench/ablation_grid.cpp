// Ablations beyond the paper's headline figures, for the design choices
// DESIGN.md calls out:
//   (1) index construction cost: grid vs R-tree (binned insert, STR,
//       raw insert) — the paper asserts grid construction "requires far
//       less work than constructing the R-tree";
//   (2) GPU block-size sweep around the paper's 256 threads/block;
//   (3) batching overhead: minimum batch count 1 vs 3 vs 12;
//   (4) mask arrays (M_j): cells examined with the mask filter vs the
//       unfiltered 3^n neighbourhood bound.
#include <iostream>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/grid_index.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    const double scale = env_scale();

    // --- (1) construction cost.
    {
      TextTable t({"dataset", "eps", "grid build (s)", "rtree binned (s)",
                   "rtree STR (s)", "rtree raw (s)"});
      for (const char* name : {"Syn2D2M", "Syn4D2M", "SW2DA"}) {
        const auto& info = datasets::info(name);
        const Dataset d = datasets::make(name, scale);
        const double eps = datasets::scaled_eps(info, d.size())[2];
        Timer timer;
        GridIndex grid(d, eps);
        const double grid_s = timer.seconds();
        const auto& rt = api::BackendRegistry::instance().at("rtree");
        auto rtree_build = [&](const char* mode) {
          api::RunConfig config;
          config.extra["build_mode"] = mode;
          return rt.run(d, eps, config).stats.build_seconds;
        };
        const double binned = rtree_build("binned");
        const double str = rtree_build("str");
        const double raw = rtree_build("raw");
        t.add_row({name, csv::fmt(eps), csv::fmt(grid_s), csv::fmt(binned),
                   csv::fmt(str), csv::fmt(raw)});
      }
      std::cout << "\n== ablation: index construction cost ==\n";
      t.print(std::cout);
    }

    // --- (2) block-size sweep.
    {
      TextTable t({"block size", "time (s)", "occupancy"});
      const Dataset d = datasets::make("Syn3D2M", scale);
      const auto& info = datasets::info("Syn3D2M");
      const double eps = datasets::scaled_eps(info, d.size())[2];
      const auto& gpu = api::BackendRegistry::instance().at("gpu_unicomp");
      for (int bs : {32, 64, 128, 256, 512, 1024}) {
        api::RunConfig config;
        config.extra["block_size"] = std::to_string(bs);
        const auto r = gpu.run(d, eps, config);
        t.add_row({std::to_string(bs), csv::fmt(r.stats.seconds),
                   csv::fmt(r.stats.native_value("occupancy") * 100) + "%"});
      }
      std::cout << "\n== ablation: block size (Syn3D2M) ==\n";
      t.print(std::cout);
    }

    // --- (3) batching overhead.
    {
      TextTable t({"min batches", "batches run", "time (s)"});
      const Dataset d = datasets::make("Syn2D2M", scale);
      const auto& info = datasets::info("Syn2D2M");
      const double eps = datasets::scaled_eps(info, d.size())[2];
      const auto& gpu = api::BackendRegistry::instance().at("gpu_unicomp");
      for (std::size_t mb : {std::size_t{1}, std::size_t{3},
                             std::size_t{12}}) {
        api::RunConfig config;
        config.extra["min_batches"] = std::to_string(mb);
        const auto r = gpu.run(d, eps, config);
        t.add_row({std::to_string(mb),
                   std::to_string(static_cast<std::uint64_t>(
                       r.stats.native_value("batches_run"))),
                   csv::fmt(r.stats.seconds)});
      }
      std::cout << "\n== ablation: minimum batch count (Syn2D2M) ==\n";
      t.print(std::cout);
    }

    // --- (4) mask filtering: examined cells vs the 3^n bound.
    {
      TextTable t({"dataset", "dim", "cells examined", "3^n bound",
                   "fraction"});
      for (const char* name :
           {"Syn2D2M", "Syn4D2M", "Syn6D2M", "SW2DA"}) {
        const auto& info = datasets::info(name);
        const Dataset d = datasets::make(name, scale);
        const double eps = datasets::scaled_eps(info, d.size())[2];
        const auto r = api::BackendRegistry::instance().at("gpu").run(d, eps);
        const auto cells_examined = static_cast<std::uint64_t>(
            r.stats.native_value("cells_examined"));
        double bound = 1.0;
        for (int j = 0; j < info.dim; ++j) bound *= 3.0;
        bound *= static_cast<double>(d.size());
        const double frac = static_cast<double>(cells_examined) / bound;
        t.add_row({name, std::to_string(info.dim),
                   std::to_string(cells_examined), csv::fmt(bound),
                   csv::fmt(frac)});
      }
      std::cout << "\n== ablation: mask-array filtering of adjacent cells ==\n";
      t.print(std::cout);
    }
  });
}
