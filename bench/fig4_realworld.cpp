// Figure 4: response time vs eps on the real-world datasets — SW2DA,
// SW2DB, SDSS2DA, SDSS2DB, SW3DA, SW3DB (panels a-f) — for GPU brute
// force, CPU-RTREE, SUPEREGO, GPU-SJ and GPU-SJ+UNICOMP.
#include "harness/figure_sweep.hpp"

int main(int argc, char** argv) {
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    run_figure_sweep("fig4", fig4_datasets(), "fig4.csv");
  });
}
