// The standard response-time-vs-eps sweep shared by Figures 4, 5 and 6:
// for each named dataset, all five implementations over the dataset's
// five-point eps sweep (brute force once — its cost is eps-independent).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/datasets.hpp"
#include "harness/bench_common.hpp"

namespace sj::bench {

inline void run_figure_sweep(const std::string& figure,
                             const std::vector<std::string>& dataset_names,
                             const std::string& csv_name) {
  Collector col(figure);
  const double scale = env_scale();
  for (const auto& name : dataset_names) {
    const auto& info = datasets::info(name);
    const Dataset d = datasets::make(name, scale);
    const auto eps_sweep = datasets::scaled_eps(info, d.size());

    // Brute force: one run, independent of eps (plotted flat in the
    // paper's panels).
    {
      auto m = run_algo("gpu_bf", d, eps_sweep.front());
      m.panel = name;
      col.add(std::move(m));
    }
    for (double eps : eps_sweep) {
      for (const char* algo : {"rtree", "ego", "gpu", "gpu_unicomp"}) {
        auto m = run_algo(algo, d, eps);
        m.panel = name;
        col.add(std::move(m));
      }
    }
  }
  col.print_series(std::cout);
  col.write_csv(csv_name);
  std::cout << "\nCSV written to " << Collector::results_dir() << "/"
            << csv_name << "\n";
}

/// Load a prior sweep's CSV, or regenerate it when missing so the
/// derived figures work standalone.
inline std::vector<Measurement> load_or_run_sweep(
    const std::string& figure, const std::vector<std::string>& dataset_names,
    const std::string& csv_name) {
  std::vector<Measurement> rows;
  if (Collector::load_csv(csv_name, rows)) return rows;
  std::cout << "(no cached " << csv_name << " — running the sweep)\n";
  run_figure_sweep(figure, dataset_names, csv_name);
  rows.clear();
  Collector::load_csv(csv_name, rows);
  return rows;
}

inline const std::vector<std::string>& fig4_datasets() {
  static const std::vector<std::string> kNames{"SW2DA", "SW2DB", "SDSS2DA",
                                               "SDSS2DB", "SW3DA", "SW3DB"};
  return kNames;
}

inline const std::vector<std::string>& fig5_datasets() {
  static const std::vector<std::string> kNames{
      "Syn2D2M", "Syn3D2M", "Syn4D2M", "Syn5D2M", "Syn6D2M"};
  return kNames;
}

inline const std::vector<std::string>& fig6_datasets() {
  static const std::vector<std::string> kNames{
      "Syn2D10M", "Syn3D10M", "Syn4D10M", "Syn5D10M", "Syn6D10M"};
  return kNames;
}

}  // namespace sj::bench
