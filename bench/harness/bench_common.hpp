// Shared bench harness: runs the five join implementations with the
// paper's measurement conventions, collects figure series, prints the
// paper-style tables and persists CSVs so the derived figures (7-9) can
// be regenerated without re-running the sweeps.
//
// Environment:
//   SJ_SCALE        multiply every dataset size (default 1.0). eps values
//                   are rescaled automatically to stay in the paper's
//                   average-neighbour regime.
//   SJ_RESULTS_DIR  where CSVs go (default ./bench_results).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/dataset.hpp"

namespace sj::bench {

/// Dataset-size multiplier from SJ_SCALE.
double env_scale();

/// Measurement conventions per algorithm (matching Section VI-B):
///   gpu, gpu_unicomp — total GPU-SJ response time (index build, upload,
///                      estimate, batched kernels, sorts, transfers)
///   rtree            — query phase only (the paper omits construction)
///   ego              — ego-sort + join (32-bit floats, as the paper ran)
///   gpu_bf           — brute-force kernel only (no result transfer)
/// These are what BackendStats::seconds reports, so run_algo works for
/// any name registered with sj::api::BackendRegistry.
struct Measurement {
  std::string figure;
  std::string panel;
  std::string dataset;
  std::string algo;
  std::size_t n = 0;
  int dim = 0;
  double eps = 0.0;
  double seconds = 0.0;
  std::uint64_t pairs = 0;
  double avg_neighbors = 0.0;
  /// Algorithmic work: candidate distance evaluations. On a single-core
  /// host the wall-clock serialises the GPU's parallel work, so the work
  /// count is the hardware-independent comparison (EXPERIMENTS.md).
  std::uint64_t distance_calcs = 0;
};

/// Run one backend (any BackendRegistry name) with the paper's
/// measurement conventions.
Measurement run_algo(const std::string& algo, const Dataset& d, double eps);

class Collector {
 public:
  explicit Collector(std::string figure) : figure_(std::move(figure)) {}

  /// Record a measurement and register it with google-benchmark (as a
  /// single manual-time iteration, so the standard benchmark report shows
  /// the same numbers the table prints).
  void add(Measurement m);

  const std::vector<Measurement>& rows() const { return rows_; }

  /// Paper-style fixed-width tables, one per panel.
  void print_series(std::ostream& os) const;

  /// CSV under results_dir(); used by the derived figure benches.
  void write_csv(const std::string& filename) const;

  static std::string results_dir();
  static bool load_csv(const std::string& filename,
                       std::vector<Measurement>& out);

 private:
  std::string figure_;
  std::vector<Measurement> rows_;
};

/// Standard bench main: initialise google-benchmark, run `body` (which
/// takes measurements and fills collectors), then replay registered
/// benchmarks and return.
int bench_main(int argc, char** argv, const std::function<void()>& body);

/// Geometric mean of the positive entries; 0.0 when none are positive.
double geomean(const std::vector<double>& values);

/// JSON string escaping for the BENCH_*.json artefacts (quotes,
/// backslashes and control characters), in ONE place instead of
/// hand-rolled per ablation.
std::string json_escape(const std::string& s);

/// One BENCH_*.json row: ordered key/value emission with the escaping and
/// number formatting the ablation benches previously copy-pasted.
///
///   JsonRow row;
///   row.field("workload", w.name).field("n", r.n).field("speedup", s);
///   row_json.push_back(row.str());   // {"workload": "Syn2D2M", ...}
class JsonRow {
 public:
  JsonRow& field(const std::string& key, const std::string& value);
  JsonRow& field(const std::string& key, const char* value);
  JsonRow& field(const std::string& key, double value);
  JsonRow& field(const std::string& key, std::uint64_t value);
  JsonRow& field(const std::string& key, int value);
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key_prefix(const std::string& key);
  std::string body_;
};

/// Write a BENCH_*.json perf-trajectory artefact — {"bench": name,
/// "scale": env_scale(), metric_key: g, "rows": [...]} with `row_json`
/// entries verbatim — to $SJ_BENCH_JSON (or `default_path` when unset).
/// Returns the path written. Shared by the ablation benches so the schema
/// CI consumes cannot drift. `metric_key` defaults to the layout/join
/// ablations' cell-vs-legacy geomean; the shard ablation passes its
/// strong-scaling key. `extra_metrics` adds further top-level
/// {key: value} entries (e.g. the shard ablation's 8-device efficiency)
/// next to the headline metric.
std::string write_bench_json(
    const std::string& bench_name, const std::string& default_path,
    double geomean_speedup, const std::vector<std::string>& row_json,
    const std::string& metric_key = "geomean_speedup_cell_vs_legacy",
    const std::vector<std::pair<std::string, double>>& extra_metrics = {});

/// The $SJ_SMOKE_CHECK regression gate: when enabled and
/// `geomean_speedup` < `min_geomean`, prints the failure and returns
/// non-zero (the bench's exit code); otherwise 0. `metric_desc` names the
/// gated quantity in the failure message.
int smoke_check(const std::string& bench_name, double geomean_speedup,
                double min_geomean = 0.9,
                const std::string& metric_desc = "cell-major geomean speedup");

}  // namespace sj::bench
