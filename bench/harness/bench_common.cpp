#include "harness/bench_common.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace sj::bench {

double env_scale() {
  const char* s = std::getenv("SJ_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

Measurement run_algo(const std::string& algo, const Dataset& d, double eps) {
  Measurement m;
  m.dataset = d.name();
  m.algo = algo;
  m.n = d.size();
  m.dim = d.dim();
  m.eps = eps;

  const auto& backend = api::BackendRegistry::instance().at(algo);
  api::RunConfig config;
  if (backend.name() == "ego") {
    // The paper's Super-EGO runs used 32-bit floats (Section VI-B).
    config.extra.emplace("use_float", "1");
  } else if (backend.name() == "gpu_bf") {
    // The paper's lower bound counts pairs without storing them.
    config.extra.emplace("materialize", "0");
  }
  const auto outcome = backend.run(d, eps, config);
  // BackendStats::seconds already follows each engine's paper measurement
  // convention (see the table in bench_common.hpp).
  m.seconds = outcome.stats.seconds;
  m.pairs = outcome.pairs.empty()
                ? static_cast<std::uint64_t>(
                      outcome.stats.native_value("num_pairs"))
                : outcome.pairs.size();
  m.distance_calcs = outcome.stats.distance_calcs;
  m.avg_neighbors = m.n == 0 ? 0.0
                             : static_cast<double>(m.pairs) /
                                   static_cast<double>(m.n);
  return m;
}

void Collector::add(Measurement m) {
  m.figure = figure_;
  const std::string name = figure_ + "/" + m.panel + "/" + m.algo +
                           "/eps=" + csv::fmt(m.eps);
  const double seconds = m.seconds;
  const double pairs = static_cast<double>(m.pairs);
  benchmark::RegisterBenchmark(name.c_str(),
                               [seconds, pairs](benchmark::State& st) {
                                 for (auto _ : st) {
                                 }
                                 st.SetIterationTime(seconds);
                                 st.counters["pairs"] = pairs;
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  rows_.push_back(std::move(m));
}

void Collector::print_series(std::ostream& os) const {
  // Group rows by panel, preserving first-seen order.
  std::vector<std::string> panels;
  for (const auto& m : rows_) {
    bool known = false;
    for (const auto& p : panels) known = known || p == m.panel;
    if (!known) panels.push_back(m.panel);
  }
  for (const auto& panel : panels) {
    os << "\n== " << figure_ << " : " << panel << " ==\n";
    TextTable t({"dataset", "algo", "eps", "time (s)", "pairs",
                 "avg. neighbors"});
    for (const auto& m : rows_) {
      if (m.panel != panel) continue;
      t.add_row({m.dataset, m.algo, csv::fmt(m.eps), csv::fmt(m.seconds),
                 std::to_string(m.pairs), csv::fmt(m.avg_neighbors)});
    }
    t.print(os);
  }
}

std::string Collector::results_dir() {
  const char* dir = std::getenv("SJ_RESULTS_DIR");
  return dir != nullptr ? dir : "bench_results";
}

void Collector::write_csv(const std::string& filename) const {
  csv::Table t({"figure", "panel", "dataset", "algo", "n", "dim", "eps",
                "seconds", "pairs", "avg_neighbors", "distance_calcs"});
  for (const auto& m : rows_) {
    t.add_row({m.figure, m.panel, m.dataset, m.algo, std::to_string(m.n),
               std::to_string(m.dim), csv::fmt(m.eps), csv::fmt(m.seconds),
               std::to_string(m.pairs), csv::fmt(m.avg_neighbors),
               std::to_string(m.distance_calcs)});
  }
  t.write(results_dir() + "/" + filename);
}

bool Collector::load_csv(const std::string& filename,
                         std::vector<Measurement>& out) {
  csv::Table t;
  if (!csv::Table::read(results_dir() + "/" + filename, t)) return false;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    Measurement m;
    m.figure = t.cell(r, "figure");
    m.panel = t.cell(r, "panel");
    m.dataset = t.cell(r, "dataset");
    m.algo = t.cell(r, "algo");
    m.n = static_cast<std::size_t>(t.num(r, "n"));
    m.dim = static_cast<int>(t.num(r, "dim"));
    m.eps = t.num(r, "eps");
    m.seconds = t.num(r, "seconds");
    m.pairs = static_cast<std::uint64_t>(t.num(r, "pairs"));
    m.avg_neighbors = t.num(r, "avg_neighbors");
    m.distance_calcs = static_cast<std::uint64_t>(t.num(r, "distance_calcs"));
    out.push_back(std::move(m));
  }
  return true;
}

int bench_main(int argc, char** argv, const std::function<void()>& body) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  body();  // takes the measurements and registers replay benchmarks
  // Guarantee at least one registered benchmark so table-style benches
  // (which print directly) don't trip the empty-filter warning.
  benchmark::RegisterBenchmark("harness/run", [](benchmark::State& st) {
    for (auto _ : st) {
    }
  })->Iterations(1);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

double geomean(const std::vector<double>& values) {
  double acc = 0.0;
  std::size_t counted = 0;
  for (const double v : values) {
    if (v > 0.0) {
      acc += std::log(v);
      ++counted;
    }
  }
  return counted > 0 ? std::exp(acc / static_cast<double>(counted)) : 0.0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonRow::key_prefix(const std::string& key) {
  if (!body_.empty()) body_.append(", ");
  body_.push_back('"');
  body_.append(json_escape(key));
  body_.append("\": ");
}

JsonRow& JsonRow::field(const std::string& key, const std::string& value) {
  key_prefix(key);
  body_.push_back('"');
  body_.append(json_escape(value));
  body_.push_back('"');
  return *this;
}

JsonRow& JsonRow::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonRow& JsonRow::field(const std::string& key, double value) {
  key_prefix(key);
  std::ostringstream os;
  os << value;  // default 6-significant-digit format, as the tables print
  body_ += os.str();
  return *this;
}

JsonRow& JsonRow::field(const std::string& key, std::uint64_t value) {
  key_prefix(key);
  body_ += std::to_string(value);
  return *this;
}

JsonRow& JsonRow::field(const std::string& key, int value) {
  key_prefix(key);
  body_ += std::to_string(value);
  return *this;
}

std::string write_bench_json(
    const std::string& bench_name, const std::string& default_path,
    double geomean_speedup, const std::vector<std::string>& row_json,
    const std::string& metric_key,
    const std::vector<std::pair<std::string, double>>& extra_metrics) {
  const char* env_path = std::getenv("SJ_BENCH_JSON");
  const std::string path =
      env_path != nullptr && *env_path != '\0' ? env_path : default_path;
  std::ofstream js(path);
  js << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n"
     << "  \"scale\": " << env_scale() << ",\n"
     << "  \"" << json_escape(metric_key) << "\": " << geomean_speedup
     << ",\n";
  for (const auto& [key, value] : extra_metrics) {
    js << "  \"" << json_escape(key) << "\": " << value << ",\n";
  }
  js << "  \"rows\": [\n";
  for (std::size_t i = 0; i < row_json.size(); ++i) {
    js << "    " << row_json[i] << (i + 1 < row_json.size() ? "," : "")
       << "\n";
  }
  js << "  ]\n}\n";
  std::cout << "wrote " << path << " (geomean speedup " << geomean_speedup
            << ")\n";
  return path;
}

int smoke_check(const std::string& bench_name, double geomean_speedup,
                double min_geomean, const std::string& metric_desc) {
  const char* smoke = std::getenv("SJ_SMOKE_CHECK");
  if (smoke == nullptr || *smoke == '\0' || std::string(smoke) == "0") {
    return 0;
  }
  if (geomean_speedup < min_geomean) {
    std::cerr << "SMOKE CHECK FAILED [" << bench_name << "]: "
              << metric_desc << " " << geomean_speedup << " < " << min_geomean
              << " (a >10% regression against the gated target)\n";
    return 1;
  }
  std::cout << "smoke check passed (geomean " << geomean_speedup
            << " >= " << min_geomean << ")\n";
  return 0;
}

}  // namespace sj::bench
