// Figure 6: response time vs eps on the 2-6-dimensional uniform
// synthetic datasets of the "10M" class (panels a-e).
#include "harness/figure_sweep.hpp"

int main(int argc, char** argv) {
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    run_figure_sweep("fig6", fig6_datasets(), "fig6.csv");
  });
}
