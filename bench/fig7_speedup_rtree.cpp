// Figure 7: speedup of GPU-SJ with UNICOMP over CPU-RTREE across every
// dataset and eps of Figures 4-6, plus the overall average (the paper
// reports an average of 26.9x). Reuses the cached CSVs when present.
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/figure_sweep.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    std::vector<Measurement> rows;
    for (auto& m :
         load_or_run_sweep("fig4", fig4_datasets(), "fig4.csv")) {
      rows.push_back(m);
    }
    for (auto& m :
         load_or_run_sweep("fig5", fig5_datasets(), "fig5.csv")) {
      rows.push_back(m);
    }
    for (auto& m :
         load_or_run_sweep("fig6", fig6_datasets(), "fig6.csv")) {
      rows.push_back(m);
    }

    // Pair rtree and gpu_unicomp rows by (dataset, eps).
    std::map<std::pair<std::string, double>, double> rtree_s, gpu_s;
    for (const auto& m : rows) {
      if (m.algo == "rtree") rtree_s[{m.dataset, m.eps}] = m.seconds;
      if (m.algo == "gpu_unicomp") gpu_s[{m.dataset, m.eps}] = m.seconds;
    }

    TextTable t({"dataset", "eps", "rtree (s)", "gpu+unicomp (s)",
                 "speedup"});
    csv::Table out({"dataset", "eps", "rtree_seconds", "gpu_seconds",
                    "speedup"});
    std::vector<double> speedups;
    for (const auto& [key, rs] : rtree_s) {
      const auto it = gpu_s.find(key);
      if (it == gpu_s.end() || it->second <= 0.0) continue;
      const double sp = rs / it->second;
      speedups.push_back(sp);
      t.add_row({key.first, csv::fmt(key.second), csv::fmt(rs),
                 csv::fmt(it->second), csv::fmt(sp)});
      out.add_row({key.first, csv::fmt(key.second), csv::fmt(rs),
                   csv::fmt(it->second), csv::fmt(sp)});
    }
    std::cout << "\n== fig7: speedup of GPU-SJ (UNICOMP) over CPU-RTREE ==\n";
    t.print(std::cout);
    std::cout << "Average speedup over all datasets: "
              << csv::fmt(stats::mean(speedups))
              << "x   (paper, full scale: 26.9x)\n";
    out.write(Collector::results_dir() + "/fig7.csv");
  });
}
