// Strong scaling of gpu_shard: 1/2/4/8 simulated devices on the uniform
// Syn2D2M workload and a strongly skewed IPPP dataset (the case the
// weighted chunklet plan + work stealing are built for), ablated over
// schedule=static (the PR-5 one-slice-per-device plan) vs schedule=steal
// (over-decomposed chunklets with work stealing).
//
// One host core serialises the simulated devices, so the scaling metric
// is the modelled multi-device MAKESPAN — common host phases plus the
// slowest device's busy clock, measured under the virtual-time serial
// drives so device timings do not contend for the core (the same
// modelling stance as the PCIe transfer model; the true wall time is
// reported alongside). Every configuration is cross-checked against the
// single-device gpu backend's pair count — the byte-level parity lives in
// tests/core/test_shard.cpp and test_chunklet.cpp.
//
// Output: the usual CSV under SJ_RESULTS_DIR plus BENCH_shard.json (path
// overridable via SJ_BENCH_JSON) carrying two top-level metrics:
// geomean_speedup_4shards_vs_1 (over the steal rows) and
// efficiency_8shards_ippp (the skewed workload's 8-device efficiency
// under stealing — the headline the chunklet scheduler exists for). With
// SJ_SMOKE_CHECK=1 the process exits non-zero when the geomean 4-device
// speedup falls below 1.44x or the IPPP 8-device efficiency falls below
// 0.85 — the CI bench-smoke gates.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  std::size_t n = 0;
  double eps = 0.0;
  std::string schedule;  // "static" or "steal"
  int shards = 0;
  double wall_seconds = 0.0;
  double makespan_seconds = 0.0;
  double max_shard_seconds = 0.0;
  std::uint64_t chunklets = 0;
  std::uint64_t stolen = 0;
  double speedup = 0.0;     // makespan(1 device) / makespan(K devices)
  double efficiency = 0.0;  // speedup / K
  std::uint64_t pairs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    {
      const auto& info = datasets::info("Syn2D2M");
      Dataset d = datasets::make("Syn2D2M", scale);
      const double eps = datasets::scaled_eps(info, d.size())[2];  // mid
      workloads.push_back({"Syn2D2M", std::move(d), eps});
    }
    {
      const auto n = static_cast<std::size_t>(2'000'000 * scale);
      Dataset d = datagen::ippp(n, 2, 64.0, 4242);
      d.set_name("IPPP2D2M");
      workloads.push_back({"IPPP2D2M", std::move(d), 0.15});
    }

    const auto& registry = api::BackendRegistry::instance();
    TextTable t({"workload", "schedule", "shards", "makespan (s)",
                 "wall (s)", "speedup", "efficiency", "stolen",
                 "max shard (s)", "pairs"});
    csv::Table out({"workload", "n", "eps", "schedule", "shards",
                    "makespan_seconds", "wall_seconds", "speedup",
                    "efficiency", "chunklets", "stolen",
                    "max_shard_seconds", "pairs"});
    for (const auto& w : workloads) {
      const std::uint64_t want_pairs =
          registry.at("gpu").run(w.data, w.eps).pairs.size();
      // Both schedules share the 1-device baseline (with one device the
      // drives are identical: nothing to steal).
      double base_makespan = 0.0;
      for (const std::string schedule : {"static", "steal"}) {
        for (int shards : {1, 2, 4, 8}) {
          if (shards == 1 && schedule == "steal") continue;
          api::RunConfig config;
          config.extra["shards"] = std::to_string(shards);
          // Virtual-time drives: per-device busy timings free of
          // host-core contention, which is what the makespan models.
          config.extra["schedule"] = schedule;
          const auto r = registry.at("gpu_shard").run(w.data, w.eps, config);
          if (r.pairs.size() != want_pairs) {
            std::cerr << "FATAL: gpu_shard(" << shards << "," << schedule
                      << ") disagrees on " << w.name << ": got "
                      << r.pairs.size() << " pairs, gpu " << want_pairs
                      << "\n";
            std::exit(1);
          }
          Row row;
          row.workload = w.name;
          row.n = w.data.size();
          row.eps = w.eps;
          row.schedule = schedule;
          row.shards = shards;
          row.wall_seconds = r.stats.seconds;
          row.makespan_seconds = r.stats.native_value("makespan_seconds");
          row.chunklets =
              static_cast<std::uint64_t>(r.stats.native_value("chunklets"));
          row.stolen = static_cast<std::uint64_t>(
              r.stats.native_value("chunklets_stolen"));
          row.pairs = r.pairs.size();
          const auto devices =
              static_cast<std::size_t>(r.stats.native_value("shards"));
          for (std::size_t s = 0; s < devices; ++s) {
            row.max_shard_seconds = std::max(
                row.max_shard_seconds,
                r.stats.native_value("shard" + std::to_string(s) +
                                     "_seconds"));
          }
          if (shards == 1) base_makespan = row.makespan_seconds;
          row.speedup = row.makespan_seconds > 0.0
                            ? base_makespan / row.makespan_seconds
                            : 0.0;
          row.efficiency = row.speedup / shards;
          t.add_row({row.workload, row.schedule, std::to_string(row.shards),
                     csv::fmt(row.makespan_seconds),
                     csv::fmt(row.wall_seconds), csv::fmt(row.speedup),
                     csv::fmt(row.efficiency), std::to_string(row.stolen),
                     csv::fmt(row.max_shard_seconds),
                     std::to_string(row.pairs)});
          out.add_row({row.workload, std::to_string(row.n),
                       csv::fmt(row.eps), row.schedule,
                       std::to_string(row.shards),
                       csv::fmt(row.makespan_seconds),
                       csv::fmt(row.wall_seconds), csv::fmt(row.speedup),
                       csv::fmt(row.efficiency),
                       std::to_string(row.chunklets),
                       std::to_string(row.stolen),
                       csv::fmt(row.max_shard_seconds),
                       std::to_string(row.pairs)});
          rows.push_back(row);
        }
      }
    }
    std::cout << "\n== ablation: gpu_shard strong scaling, static plan vs "
                 "work stealing (modelled multi-device makespan) ==\n";
    t.print(std::cout);
    std::cout << "(every configuration returns the identical pair set; "
                 "asserted above and byte-exactly by "
                 "tests/core/test_shard.cpp)\n";
    out.write(Collector::results_dir() + "/ablation_shard.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_shard.json + the CI smoke gates: geomean 4-device speedup
  // under stealing (below 1.44x = >10% off the 1.6x scale-out target)
  // and the skewed workload's 8-device efficiency under stealing (below
  // 0.85 the over-decomposition has regressed).
  std::vector<double> speedups4;
  double efficiency8_ippp = 0.0;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    const bool steal_row = r.schedule == "steal" || r.shards == 1;
    if (r.shards == 4 && steal_row) speedups4.push_back(r.speedup);
    if (r.shards == 8 && steal_row && r.workload == "IPPP2D2M") {
      efficiency8_ippp = r.efficiency;
    }
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("n", static_cast<std::uint64_t>(r.n))
                           .field("eps", r.eps)
                           .field("schedule", r.schedule)
                           .field("shards", r.shards)
                           .field("makespan_seconds", r.makespan_seconds)
                           .field("wall_seconds", r.wall_seconds)
                           .field("speedup", r.speedup)
                           .field("efficiency", r.efficiency)
                           .field("chunklets", r.chunklets)
                           .field("stolen", r.stolen)
                           .field("max_shard_seconds", r.max_shard_seconds)
                           .field("pairs", r.pairs)
                           .str());
  }
  const double g = geomean(speedups4);
  write_bench_json("ablation_shard", "BENCH_shard.json", g, row_json,
                   "geomean_speedup_4shards_vs_1",
                   {{"efficiency_8shards_ippp", efficiency8_ippp}});
  const int rc_speedup = smoke_check("ablation_shard", g, 1.44,
                                     "4-device geomean makespan speedup");
  // Strong-scaling efficiency is scale-dependent: the serialized common
  // prefix (index build, staging, planning) has fixed costs that an
  // SJ_SCALE-shrunk workload cannot amortise, so the full 0.85 gate
  // (target 0.9 minus noise) applies at scale >= 1 and the CI smoke
  // scale (0.2) gates at the proportionately lower floor measured there
  // (~0.4-0.5 observed, wide noise band on tiny runs).
  const double eff_gate = env_scale() >= 1.0 ? 0.85 : 0.30;
  const int rc_eff =
      smoke_check("ablation_shard", efficiency8_ippp, eff_gate,
                  "IPPP 8-device strong-scaling efficiency (steal)");
  return rc_speedup != 0 ? rc_speedup : rc_eff;
}
