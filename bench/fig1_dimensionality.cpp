// Figure 1: the motivation experiment.
//  (a) R-tree self-join response time and average neighbours vs dimension
//      (2-6) on uniform 2M-class data at the eps=1 equivalent.
//  (b) Response time and average neighbours vs eps on the 6-D dataset
//      (paper sweep: eps = 4..12).
// eps values are rescaled per dimension to preserve the paper's
// average-neighbour regime at the scaled-down sizes (DESIGN.md §5).
#include <cmath>
#include <iostream>

#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    Collector col("fig1");
    const double scale = env_scale();

    // (a) dimension sweep at the paper's eps = 1 on 2M uniform points.
    for (int dim = 2; dim <= 6; ++dim) {
      const std::string name = "Syn" + std::to_string(dim) + "D2M";
      const auto& info = datasets::info(name);
      const Dataset d = datasets::make(name, scale);
      // eps = 1 rescaled: (N_paper / N_ours)^(1/dim).
      const double eps =
          std::pow(static_cast<double>(info.paper_n) /
                       static_cast<double>(d.size()),
                   1.0 / dim);
      auto m = run_algo("rtree", d, eps);
      m.panel = "fig1a_dim_sweep";
      col.add(std::move(m));
    }

    // (b) eps sweep on the 6-D dataset (paper: eps = 4, 6, 8, 10, 12).
    {
      const std::string name = "Syn6D2M";
      const auto& info = datasets::info(name);
      const Dataset d = datasets::make(name, scale);
      const double f = std::pow(static_cast<double>(info.paper_n) /
                                    static_cast<double>(d.size()),
                                1.0 / 6.0);
      for (double paper_eps : {4.0, 6.0, 8.0, 10.0, 12.0}) {
        auto m = run_algo("rtree", d, paper_eps * f);
        m.panel = "fig1b_eps_sweep_6d";
        col.add(std::move(m));
      }
    }

    col.print_series(std::cout);
    col.write_csv("fig1.csv");
  });
}
