// Figure 5: response time vs eps on the 2-6-dimensional uniform
// synthetic datasets of the "2M" class (panels a-e).
#include "harness/figure_sweep.hpp"

int main(int argc, char** argv) {
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    run_figure_sweep("fig5", fig5_datasets(), "fig5.csv");
  });
}
