// sjtool — command-line driver for the library: generate Table I
// datasets, inspect files, and run any of the join/kNN implementations on
// binary (.sjd) or CSV point files.
//
//   sjtool gen      --dataset Syn2D2M [--scale 1.0] --out points.sjd
//   sjtool info     --in points.sjd
//   sjtool selfjoin --in points.sjd --eps 2.0 [--algo gpu_unicomp]
//                   [--pairs-out pairs.csv] [--counts-out counts.csv]
//   sjtool join     --in queries.sjd --data data.sjd --eps 1.0 [--algo gpu]
//   sjtool knn      --in points.sjd --k 8 [--data data.sjd] [--algo gpu]
//                   [--out knn.csv]
//
// Every operation dispatches through sj::api::BackendRegistry: --algo
// accepts any registered backend; picking one without the operation's
// capability fails with a one-line error listing the capable backends.
// Formats are chosen by extension: .sjd binary, anything else CSV.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/session.hpp"
#include "common/cancel.hpp"
#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/io.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"

namespace {

using sj::Dataset;

[[noreturn]] void usage(const std::string& msg = {}) {
  if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage:\n"
      "  sjtool gen      --dataset NAME [--scale S] --out FILE\n"
      "  sjtool info     --in FILE\n"
      "  sjtool selfjoin --in FILE --eps E [--algo A] [--threads N]\n"
      "                  [--opt k=v[,k=v...]] [--mode pairs|count|histogram]\n"
      "                  [--stats 1] [--validate 1]\n"
      "                  [--pairs-out F] [--counts-out F]\n"
      "  sjtool join     --in QUERIES --data DATA --eps E [--algo A]\n"
      "                  [--threads N] [--opt ...]\n"
      "                  [--mode pairs|count|histogram] [--stats 1]\n"
      "                  [--validate 1] [--pairs-out F]\n"
      "  sjtool knn      --in FILE --k K [--data DATA] [--algo A]\n"
      "                  [--threads N] [--opt ...] [--stats 1]\n"
      "                  [--validate 1] [--out F]\n"
      "  sjtool serve    --in FILE --eps E [--snapshot F] [--workers N]\n"
      "                  [--clients N] [--queries N] [--deadline-ms D]\n"
      "                  [--cancel-frac F] [--mix 1] [--mode pairs|count]\n"
      "                  [--queue-depth N] [--max-age-ms A] [--coalesce N]\n"
      "                  [--faults SPEC] [--stats 1] [--json F]\n"
      "serve stages the grid index once (warm from --snapshot when it\n"
      "validates) and drives concurrent client traffic through the\n"
      "QuerySession admission queue; --stats prints the deadline / shed /\n"
      "cancel counter line and latency percentiles.\n"
      "selfjoin/join/knn accept --deadline-ms D: the run fails with a typed\n"
      "DeadlineExceeded (exit 3) at the next pipeline checkpoint once D ms\n"
      "have elapsed end-to-end.\n"
      "selfjoin/join also accept fault-tolerance flags (GPU backends):\n"
      "  --faults SPEC    arm the deterministic fault injector (needs a\n"
      "                   -DSJ_FAULTS=ON build); "
   << sj::fault::spec_grammar() << "\n"
   << "  --retries N      transient-fault retries per batch (default 6)\n"
      "  --backoff-ms B   base retry backoff in ms, doubling per attempt\n"
      "--validate 1 force-enables the structural validators (grid, "
      "adjacency,\nshard plan, pipeline) even in release builds; --stats "
      "then reports the\ntime spent validating.\n"
      "algorithms (selfjoin defaults to gpu_unicomp, join/knn to gpu): ";
  for (const auto& name : sj::api::BackendRegistry::instance().names()) {
    std::cerr << name << " ";
  }
  std::cerr << "\ndatasets for gen: ";
  for (const auto& i : sj::datasets::all()) std::cerr << i.name << " ";
  std::cerr << "\n";
  std::exit(2);
}

/// The multi-line backend listing printed for an unknown --algo: every
/// registered name with its capability tags, so the user can see at a
/// glance which engines serve selfjoin/join/knn (and which are GPU).
void print_backends(std::ostream& os) {
  const auto& registry = sj::api::BackendRegistry::instance();
  os << "registered backends:\n";
  for (const auto& name : registry.names()) {
    const auto& backend = registry.at(name);
    os << "  " << name << "  ["
       << sj::api::capability_summary(backend.capabilities()) << "]  — "
       << backend.description() << "\n";
  }
  for (const auto& alias : registry.aliases()) {
    os << "  " << alias << " (alias)\n";
  }
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) usage("unexpected argument " + arg);
    if (i + 1 >= argc) usage("missing value for " + arg);
    flags[arg.substr(2)] = argv[++i];
  }
  return flags;
}

std::string require(const std::map<std::string, std::string>& flags,
                    const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage("missing --" + key);
  return it->second;
}

bool is_binary_path(const std::string& path) {
  return path.size() > 4 && path.substr(path.size() - 4) == ".sjd";
}

Dataset load_any(const std::string& path) {
  return is_binary_path(path) ? sj::io::load_binary(path)
                              : sj::io::load_csv(path);
}

void save_any(const Dataset& d, const std::string& path) {
  if (is_binary_path(path)) {
    sj::io::save_binary(d, path);
  } else {
    sj::io::save_csv(d, path);
  }
}

void write_pairs_csv(const sj::ResultSet& pairs, const std::string& path) {
  sj::csv::Table t({"key", "value"});
  for (const auto& p : pairs.pairs()) {
    t.add_row({std::to_string(p.key), std::to_string(p.value)});
  }
  t.write(path);
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const std::string name = require(flags, "dataset");
  const double scale =
      flags.count("scale") ? sj::parse::positive_number("--scale",
                                                        flags.at("scale"))
                           : 1.0;
  const std::string out = require(flags, "out");
  const Dataset d = sj::datasets::make(name, scale);
  save_any(d, out);
  std::cout << "wrote " << d.size() << " points (" << d.dim() << "-D) to "
            << out << "\n";
  return 0;
}

int cmd_info(const std::map<std::string, std::string>& flags) {
  const Dataset d = load_any(require(flags, "in"));
  std::cout << "points: " << d.size() << "\ndim:    " << d.dim() << "\n";
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  for (int j = 0; j < d.dim(); ++j) {
    std::cout << "dim " << j << ":  [" << lo[j] << ", " << hi[j] << "]\n";
  }
  return 0;
}

/// Parse "--opt k=v,k2=v2" into RunConfig::extra.
void parse_opts(const std::string& spec, sj::api::RunConfig& config) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      usage("--opt entries must look like key=value, got '" + item + "'");
    }
    config.extra[item.substr(0, eq)] = item.substr(eq + 1);
    pos = comma + 1;
  }
}

/// Resolve --algo against the registry; prints the capability listing and
/// returns nullptr for an unknown name (the caller exits 2).
const sj::api::Backend* resolve_algo(
    const std::map<std::string, std::string>& flags,
    const std::string& default_algo) {
  const std::string algo =
      flags.count("algo") ? flags.at("algo") : default_algo;
  const sj::api::Backend* backend =
      sj::api::BackendRegistry::instance().find(algo);
  if (backend == nullptr) {
    std::cerr << "error: unknown algorithm '" << algo << "'\n";
    print_backends(std::cerr);
  }
  return backend;
}

/// The --threads/--opt/--mode/--stats plumbing shared by selfjoin, join
/// and knn. --mode is strict: an unknown value fails with the error from
/// parse_result_mode listing the known modes, and 'sink' — valid in the
/// API, where a callback can be supplied — is rejected here.
sj::api::RunConfig make_config(const std::map<std::string, std::string>& flags,
                               const sj::api::Backend& backend,
                               bool& show_stats) {
  sj::api::RunConfig config;
  if (flags.count("threads")) {
    config.threads = sj::parse::integer("--threads", flags.at("threads"));
  }
  if (flags.count("opt")) parse_opts(flags.at("opt"), config);
  // Fault-tolerance flags are sugar for the GPU backends' --opt knobs:
  // --faults arms the process-wide injector immediately (so a bad spec or
  // a faults-compiled-out build fails before any data is loaded), while
  // --retries/--backoff-ms ride through RunConfig::extra like any knob.
  if (flags.count("faults")) {
    sj::fault::configure_from_text(flags.at("faults"));
  }
  if (flags.count("retries")) config.extra["retries"] = flags.at("retries");
  if (flags.count("backoff-ms")) {
    config.extra["backoff_ms"] = flags.at("backoff-ms");
  }
  // --deadline-ms is sugar for the GPU adapters' deadline_ms knob: an
  // end-to-end budget enforced at the pipeline's checkpoint seams.
  if (flags.count("deadline-ms")) {
    config.extra["deadline_ms"] = flags.at("deadline-ms");
  }
  if (flags.count("mode")) {
    config.mode = sj::parse_result_mode(flags.at("mode"));
    if (config.mode == sj::ResultMode::kSink) {
      throw std::invalid_argument(
          "--mode sink needs an in-process callback; sjtool modes: pairs, "
          "count, histogram");
    }
  }
  show_stats = flags.count("stats") && flags.at("stats") != "0";
  config.collect_metrics = show_stats && backend.capabilities().gpu;
  // Force the structural validators on even when the build compiled the
  // contract macros out (the cheap runtime subset of SJ_VALIDATE=ON).
  if (flags.count("validate") && flags.at("validate") != "0") {
    sj::contracts::set_runtime_checks(true);
  }
  return config;
}

/// --stats line for --validate runs: wall time spent inside the
/// structural validators, so the checking overhead is visible next to
/// the join time it inflates.
void print_validation_time() {
  if (!sj::contracts::active()) return;
  std::cout << "validation: " << sj::contracts::validation_seconds()
            << " s\n";
}

/// Pair throughput line for --stats: exact count in every result mode.
void print_pair_rate(std::uint64_t total_pairs, double seconds) {
  if (seconds <= 0.0) return;
  std::cout << "pairs/sec: " << static_cast<double>(total_pairs) / seconds
            << "\n";
}

/// The per-device balance table for --algo gpu_shard: one row per device
/// slot (cells/groups, weighted work share, points incl. halo, pairs,
/// chunklets run / stolen and the busy time spent on stolen ones, device
/// busy seconds), so load skew — and how much of it stealing absorbed —
/// is diagnosable straight from the CLI.
void print_shard_balance(const sj::api::BackendStats& stats) {
  const auto shards =
      static_cast<std::size_t>(stats.native_value("shards"));
  if (shards == 0) return;
  double total_weight = 0.0;
  for (std::size_t s = 0; s < shards; ++s) {
    total_weight +=
        stats.native_value("shard" + std::to_string(s) + "_weight");
  }
  const char* schedule =
      stats.native_value("schedule_concurrent") != 0.0 ? "concurrent"
      : stats.native_value("schedule_static") != 0.0   ? "static"
                                                       : "steal";
  std::cout << "shard balance (" << shards << " devices, "
            << stats.native_value("chunklets") << " chunklets, " << schedule
            << " schedule):\n"
            << "  shard      cells    weight%     points       halo"
               "      pairs  chunklets  stolen    steal_s    seconds"
               "  device\n";
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string p = "shard" + std::to_string(s) + "_";
    const double weight = stats.native_value(p + "weight");
    const bool failed_over = stats.native_value(p + "failed_over") != 0.0;
    char line[224];
    std::snprintf(line, sizeof(line),
                  "  %5zu %10.0f %9.1f%% %10.0f %10.0f %10.0f %10.0f %7.0f "
                  "%10.6f %10.6f %5.0f%s\n",
                  s, stats.native_value(p + "cells"),
                  total_weight > 0.0 ? 100.0 * weight / total_weight : 0.0,
                  stats.native_value(p + "points"),
                  stats.native_value(p + "halo_points"),
                  stats.native_value(p + "pairs"),
                  stats.native_value(p + "chunklets"),
                  stats.native_value(p + "stolen"),
                  stats.native_value(p + "steal_seconds"),
                  stats.native_value(p + "seconds"),
                  stats.native_value(p + "device"),
                  failed_over ? "  (failed over)" : "");
    std::cout << line;
  }
  std::cout << "  makespan: " << stats.native_value("makespan_seconds")
            << " s (common " << stats.native_value("common_seconds")
            << " s + slowest device; device busy total "
            << stats.native_value("busy_sum_seconds") << " s)\n";
  const double stolen = stats.native_value("chunklets_stolen");
  if (stolen > 0.0) {
    std::cout << "  stealing: " << stolen
              << " chunklet(s) run off a foreign deque\n";
  }
  const double failed = stats.native_value("shards_failed_over");
  if (failed > 0.0) {
    std::cout << "  failover: " << failed
              << " shard(s) re-planned onto surviving devices ("
              << stats.native_value("recovery_seconds")
              << " s spent on re-runs)\n";
  }
}

// Validated before the join runs so a bad flag combination fails fast
// instead of after the (possibly long) computation.
void check_pairs_out_mode(const std::map<std::string, std::string>& flags,
                          const sj::api::RunConfig& config) {
  if (flags.count("pairs-out") && config.mode != sj::ResultMode::kPairs) {
    throw std::invalid_argument(
        "--pairs-out needs --mode pairs (no pair set is materialised in "
        "mode '" +
        std::string(sj::result_mode_name(config.mode)) + "')");
  }
}

void print_native_stats(const sj::api::Backend& backend,
                        const sj::api::BackendStats& stats) {
  const bool shard_table = stats.native.count("shards") != 0;
  if (shard_table) print_shard_balance(stats);
  if (stats.native.empty()) return;
  std::cout << "native stats [" << backend.name() << "]:\n";
  for (const auto& [key, value] : stats.native) {
    // The per-shard counters are already rendered as the balance table.
    if (shard_table && key.rfind("shard", 0) == 0) continue;
    std::cout << "  " << key << ": " << value << "\n";
  }
  if (sj::fault::enabled()) {
    std::cout << "fault injection: " << sj::fault::injected_total()
              << " fault(s) injected (alloc "
              << sj::fault::injected(sj::fault::Site::kAlloc) << ", stream "
              << sj::fault::injected(sj::fault::Site::kStream) << ", sync "
              << sj::fault::injected(sj::fault::Site::kSync) << ", sort "
              << sj::fault::injected(sj::fault::Site::kSort) << "), "
              << sj::fault::devices_lost() << " device(s) lost\n";
  }
}

int cmd_selfjoin(const std::map<std::string, std::string>& flags) {
  const Dataset d = load_any(require(flags, "in"));
  const double eps = sj::parse::positive_number("--eps", require(flags, "eps"));
  const sj::api::Backend* backend = resolve_algo(flags, "gpu_unicomp");
  if (backend == nullptr) return 2;
  const std::string algo(backend->name());

  bool show_stats = false;
  sj::api::RunConfig config = make_config(flags, *backend, show_stats);
  check_pairs_out_mode(flags, config);

  auto outcome = backend->run(d, eps, config);
  sj::ResultSet pairs = std::move(outcome.pairs);
  const double seconds = outcome.stats.seconds;

  std::cout << "distance calcs: " << outcome.stats.distance_calcs;
  if (outcome.stats.build_seconds > 0.0) {
    std::cout << "  build/sort: " << outcome.stats.build_seconds << " s";
  }
  std::cout << "\n";
  if (show_stats) print_native_stats(*backend, outcome.stats);

  // total_pairs is exact in every mode; the pair set exists only under
  // --mode pairs.
  const double n = static_cast<double>(d.size());
  std::cout << "pairs:   " << outcome.total_pairs << " (incl. self pairs)\n"
            << "avg nbr: "
            << (d.empty() ? 0.0
                          : static_cast<double>(outcome.total_pairs) / n)
            << "\n"
            << "time:    " << seconds << " s  [" << algo << "]\n";
  if (show_stats) {
    print_pair_rate(outcome.total_pairs, seconds);
    print_validation_time();
  }
  if (flags.count("pairs-out")) {
    pairs.normalize();
    write_pairs_csv(pairs, flags.at("pairs-out"));
    std::cout << "pairs written to " << flags.at("pairs-out") << "\n";
  }
  if (flags.count("counts-out")) {
    if (config.mode == sj::ResultMode::kCountOnly) {
      throw std::invalid_argument(
          "--counts-out needs per-point counts; use --mode histogram (or "
          "pairs)");
    }
    const auto counts = config.mode == sj::ResultMode::kHistogram
                            ? outcome.histogram
                            : pairs.counts_per_key(d.size());
    sj::csv::Table t({"point", "neighbors"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      t.add_row({std::to_string(i), std::to_string(counts[i])});
    }
    t.write(flags.at("counts-out"));
    std::cout << "counts written to " << flags.at("counts-out") << "\n";
  }
  return 0;
}

int cmd_join(const std::map<std::string, std::string>& flags) {
  const Dataset a = load_any(require(flags, "in"));
  const Dataset b = load_any(require(flags, "data"));
  const double eps = sj::parse::positive_number("--eps", require(flags, "eps"));
  const sj::api::Backend* backend = resolve_algo(flags, "gpu");
  if (backend == nullptr) return 2;

  bool show_stats = false;
  const sj::api::RunConfig config = make_config(flags, *backend, show_stats);
  check_pairs_out_mode(flags, config);
  // Throws the one-line capability error when the backend lacks join.
  auto outcome = backend->join(a, b, eps, config);

  std::cout << "pairs: " << outcome.total_pairs
            << "  (query, data index pairs)\n"
            << "distance calcs: " << outcome.stats.distance_calcs << "\n"
            << "time:  " << outcome.stats.seconds << " s  ["
            << backend->name() << "]\n";
  if (show_stats) {
    print_native_stats(*backend, outcome.stats);
    print_pair_rate(outcome.total_pairs, outcome.stats.seconds);
    print_validation_time();
  }
  if (flags.count("pairs-out")) {
    outcome.pairs.normalize();
    write_pairs_csv(outcome.pairs, flags.at("pairs-out"));
    std::cout << "pairs written to " << flags.at("pairs-out") << "\n";
  }
  return 0;
}

int cmd_knn(const std::map<std::string, std::string>& flags) {
  const Dataset d = load_any(require(flags, "in"));
  const int k = sj::parse::positive_integer("--k", require(flags, "k"));
  const sj::api::Backend* backend = resolve_algo(flags, "gpu");
  if (backend == nullptr) return 2;

  bool show_stats = false;
  const sj::api::RunConfig config = make_config(flags, *backend, show_stats);
  // --data switches to the two-set mode: neighbours of --in's points
  // within --data. Throws the capability error when the backend lacks knn.
  sj::api::KnnOutcome outcome;
  if (flags.count("data")) {
    const Dataset data = load_any(flags.at("data"));
    outcome = backend->knn(d, data, k, config);
  } else {
    outcome = backend->self_knn(d, k, config);
  }

  const auto& r = outcome.neighbors;
  std::cout << "queries: " << r.num_queries() << "  k: " << r.k() << "\n"
            << "time: " << outcome.stats.seconds << " s ("
            << static_cast<double>(outcome.stats.distance_calcs) /
                   static_cast<double>(
                       std::max<std::size_t>(r.num_queries(), 1))
            << " candidates/query)  [" << backend->name() << "]\n";
  if (show_stats) {
    print_native_stats(*backend, outcome.stats);
    print_validation_time();
  }
  if (flags.count("out")) {
    sj::csv::Table t({"query", "rank", "neighbor", "distance"});
    for (std::size_t q = 0; q < r.num_queries(); ++q) {
      for (int j = 0; j < r.count(q); ++j) {
        t.add_row({std::to_string(q), std::to_string(j),
                   std::to_string(r.neighbor(q, j)),
                   sj::csv::fmt(r.distance(q, j))});
      }
    }
    t.write(flags.at("out"));
    std::cout << "neighbors written to " << flags.at("out") << "\n";
  }
  return 0;
}

/// The always-on service driver: stage the index once (warm from
/// --snapshot when it validates), then hammer the QuerySession from
/// --clients threads issuing --queries range queries each, optionally
/// under per-query deadlines, client cancellations and SJ_FAULTS chaos.
/// Typed outcomes (Overloaded / DeadlineExceeded / Cancelled) are
/// expected service behaviour and keep exit status 0; only untyped
/// failures (or a crash) fail the run.
int cmd_serve(const std::map<std::string, std::string>& flags) {
  Dataset d = load_any(require(flags, "in"));
  const double eps =
      sj::parse::positive_number("--eps", require(flags, "eps"));
  if (flags.count("faults")) {
    sj::fault::configure_from_text(flags.at("faults"));
  }

  sj::api::SessionOptions so;
  if (flags.count("workers")) {
    so.workers = sj::parse::positive_integer("--workers", flags.at("workers"));
  }
  if (flags.count("queue-depth")) {
    so.max_queue_depth = static_cast<std::size_t>(
        sj::parse::positive_integer("--queue-depth", flags.at("queue-depth")));
  }
  if (flags.count("max-age-ms")) {
    so.max_queue_age_ms =
        sj::parse::positive_number("--max-age-ms", flags.at("max-age-ms"));
  }
  if (flags.count("coalesce")) {
    so.coalesce_limit = static_cast<std::size_t>(
        sj::parse::positive_integer("--coalesce", flags.at("coalesce")));
  }
  if (flags.count("snapshot")) so.snapshot = flags.at("snapshot");

  const int clients =
      flags.count("clients")
          ? sj::parse::positive_integer("--clients", flags.at("clients"))
          : 4;
  const int queries =
      flags.count("queries")
          ? sj::parse::positive_integer("--queries", flags.at("queries"))
          : 64;
  const double deadline_ms =
      flags.count("deadline-ms")
          ? sj::parse::positive_number("--deadline-ms", flags.at("deadline-ms"))
          : 0.0;
  const double cancel_frac =
      flags.count("cancel-frac")
          ? sj::parse::number("--cancel-frac", flags.at("cancel-frac"))
          : 0.0;
  if (cancel_frac < 0.0 || cancel_frac > 1.0) {
    throw std::invalid_argument("--cancel-frac must be in [0, 1]");
  }
  const bool mix = flags.count("mix") && flags.at("mix") != "0";
  bool count_only = false;
  if (flags.count("mode")) {
    const std::string& m = flags.at("mode");
    if (m == "count") {
      count_only = true;
    } else if (m != "pairs") {
      throw std::invalid_argument("serve --mode must be pairs or count");
    }
  }
  const bool show_stats = flags.count("stats") && flags.at("stats") != "0";

  sj::api::QuerySession session(std::move(d), eps, so);
  std::cout << "session up: " << session.data().size() << " points ("
            << session.data().dim() << "-D), eps " << eps << ", "
            << (session.restored_from_snapshot() ? "restored warm from "
                                                 : "built cold")
            << (session.restored_from_snapshot() ? so.snapshot : "")
            << " in " << session.stats().startup_seconds << " s\n";

  std::atomic<std::uint64_t> ok{0}, shed{0}, expired{0}, cancelled{0},
      failed{0};
  sj::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const Dataset& data = session.data();
      const auto resolve = [&](auto& fut) {
        try {
          fut.get();
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const sj::exec::Overloaded&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } catch (const sj::exec::DeadlineExceeded&) {
          expired.fetch_add(1, std::memory_order_relaxed);
        } catch (const sj::exec::Cancelled&) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      for (int q = 0; q < queries; ++q) {
        // Deterministic query point: stride through the dataset with a
        // per-client offset so clients do not all hit the same cells.
        const std::size_t idx =
            (static_cast<std::size_t>(c) * 2654435761ULL +
             static_cast<std::size_t>(q) * 40503ULL) %
            data.size();
        std::vector<double> pt(data.pt(idx), data.pt(idx) + data.dim());
        sj::api::QueryOptions qo;
        qo.deadline_ms = deadline_ms;
        qo.count_only = count_only;
        sj::exec::CancelToken token;
        const bool do_cancel =
            cancel_frac > 0.0 &&
            static_cast<double>((q * clients + c) % 100) <
                cancel_frac * 100.0;
        if (do_cancel) qo.cancel = &token;
        if (mix && q % 8 == 7) {
          // Every 8th query is a kNN on the same point — the mixed-kind
          // traffic the admission queue interleaves with range batches.
          try {
            auto fut = session.knn(Dataset(data.dim(), pt), 4, qo);
            if (do_cancel) token.cancel();
            resolve(fut);
          } catch (const sj::exec::Overloaded&) {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        try {
          auto fut = session.range(std::move(pt), qo);
          if (do_cancel) token.cancel();
          resolve(fut);
        } catch (const sj::exec::Overloaded&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (mix && c == 0) {
        // One full self-join from the first client, concurrent with the
        // range/kNN traffic of everyone else.
        try {
          auto fut = session.self_join({});
          resolve(fut);
        } catch (const sj::exec::Overloaded&) {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.seconds();

  const sj::api::SessionStats st = session.stats();
  const std::uint64_t issued = ok + shed + expired + cancelled + failed;
  std::cout << "served " << issued << " queries in " << seconds << " s ("
            << (seconds > 0.0 ? static_cast<double>(ok) / seconds : 0.0)
            << " completed/s) [" << clients << " clients, "
            << std::max(1, so.workers) << " workers]\n";
  // The deadline / shed / cancel counter line — the service's vital signs.
  std::cout << "exec: admitted=" << st.admitted << " shed=" << st.shed
            << " expired=" << st.expired << " cancelled=" << st.cancelled
            << " completed=" << st.completed << " failed=" << st.failed
            << "\n";
  if (show_stats) {
    std::cout << "latency: p50=" << st.p50_ms << " ms  p99=" << st.p99_ms
              << " ms  (" << st.latency_samples << " samples)\n"
              << "coalescing: " << st.coalesced_queries
              << " range queries served by " << st.coalesced_batches
              << " shared launches\n";
    if (sj::fault::enabled()) {
      std::cout << "fault injection: " << sj::fault::injected_total()
                << " fault(s) injected, " << sj::fault::devices_lost()
                << " device(s) lost\n";
    }
  }
  if (flags.count("json")) {
    std::ostringstream js;
    js << "{\n"
       << "  \"queries\": " << issued << ",\n"
       << "  \"seconds\": " << seconds << ",\n"
       << "  \"qps\": "
       << (seconds > 0.0 ? static_cast<double>(ok) / seconds : 0.0) << ",\n"
       << "  \"admitted\": " << st.admitted << ",\n"
       << "  \"shed\": " << st.shed << ",\n"
       << "  \"expired\": " << st.expired << ",\n"
       << "  \"cancelled\": " << st.cancelled << ",\n"
       << "  \"completed\": " << st.completed << ",\n"
       << "  \"failed\": " << st.failed << ",\n"
       << "  \"p50_ms\": " << st.p50_ms << ",\n"
       << "  \"p99_ms\": " << st.p99_ms << ",\n"
       << "  \"restored_from_snapshot\": "
       << (st.restored_from_snapshot ? "true" : "false") << ",\n"
       << "  \"startup_seconds\": " << st.startup_seconds << "\n"
       << "}\n";
    sj::io::atomic_write_file(flags.at("json"), js.str());
    std::cout << "stats written to " << flags.at("json") << "\n";
  }
  return failed.load() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(flags);
    if (cmd == "info") return cmd_info(flags);
    if (cmd == "selfjoin") return cmd_selfjoin(flags);
    if (cmd == "join") return cmd_join(flags);
    if (cmd == "knn") return cmd_knn(flags);
    if (cmd == "serve") return cmd_serve(flags);
  } catch (const sj::exec::DeadlineExceeded& e) {
    // Typed service-layer outcomes get their own exit code so scripts can
    // tell "the budget ran out" apart from "the run was wrong".
    std::cerr << "deadline exceeded: " << e.what() << "\n";
    return 3;
  } catch (const sj::exec::Cancelled& e) {
    std::cerr << "cancelled: " << e.what() << "\n";
    return 3;
  } catch (const sj::exec::Overloaded& e) {
    std::cerr << "overloaded: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage("unknown command " + cmd);
}
