// Ionosphere observation density — the workload behind the paper's SW-
// datasets (latitude / longitude / total electron content of ionosphere
// monitoring data). The eps-neighbourhood count of each observation is a
// kernel-density estimate used to find anomalously dense monitoring
// regions; in 3-D the TEC value participates in the distance, so dense
// regions are coherent in space AND electron content.
//
//   ./ionosphere_density [n] [eps2d] [eps3d]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"

namespace {

void density_report(const sj::Dataset& d, double eps, int print_dim) {
  const auto& backend = sj::api::BackendRegistry::instance().at("gpu_unicomp");
  const auto result = backend.run(d, eps);
  const auto counts = result.pairs.counts_per_key(d.size());

  std::vector<std::uint32_t> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&](double p) {
    return sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
  };
  std::cout << "  neighbours/point: median " << pct(0.5) << ", p90 "
            << pct(0.9) << ", p99 " << pct(0.99) << ", max "
            << sorted.back() << "\n";

  // The densest observation site.
  const auto it = std::max_element(counts.begin(), counts.end());
  const std::size_t densest =
      static_cast<std::size_t>(it - counts.begin());
  std::cout << "  densest site at (";
  for (int j = 0; j < print_dim; ++j) {
    std::cout << (j > 0 ? ", " : "") << d.coord(densest, j);
  }
  std::cout << ") with " << *it << " neighbours\n";
  std::cout << "  self-join: " << result.stats.seconds << " s, "
            << result.stats.native_value("batches_run") << " batches, "
            << result.stats.native_value("grid_nonempty_cells")
            << " non-empty cells\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
  const double eps2 = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double eps3 = argc > 3 ? std::atof(argv[3]) : 1.0;

  std::cout << "Generating " << n << " SW-like ionosphere observations\n";

  // 2-D: position only (the paper's SW2D* configuration).
  const sj::Dataset d2 = sj::datagen::sw_like(n, 2, 99);
  std::cout << "\n2-D (lon/lat), eps = " << eps2 << ":\n";
  density_report(d2, eps2, 2);

  // 3-D: position + TEC (the paper's SW3D* configuration). The same
  // spatial eps finds fewer neighbours because the third dimension also
  // constrains the match — the paper's Figure 4 (e, f) uses larger eps
  // in 3-D for exactly this reason.
  const sj::Dataset d3 = sj::datagen::sw_like(n, 3, 99);
  std::cout << "\n3-D (lon/lat/TEC), eps = " << eps3 << ":\n";
  density_report(d3, eps3, 3);

  std::cout << "\nSkew note: station-structured data occupies far fewer\n"
               "grid cells than uniform data of the same size — the case\n"
               "the paper argues favours the grid index (Section VI-C).\n";
  return 0;
}
