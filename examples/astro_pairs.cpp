// Galaxy pair analysis on an SDSS-like catalogue — the workload behind
// the paper's SDSS- datasets (galaxies from SDSS DR12 in a redshift
// slice). Close pairs within an angular separation trace interacting
// systems and the small-scale clustering signal; the pair-separation
// histogram is the raw ingredient of the two-point correlation function.
//
//   ./astro_pairs [n] [eps]
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/distance.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::cout << "Generating an SDSS-like catalogue of " << n
            << " galaxies (cluster process + field population)\n";
  const sj::Dataset cat = sj::datagen::sdss_like(n, 2027);

  const auto& registry = sj::api::BackendRegistry::instance();
  const auto result = registry.at("gpu_unicomp").run(cat, eps);

  // Unordered close pairs, excluding self pairs.
  const std::size_t unordered =
      (result.pairs.size() - cat.size()) / 2;
  std::cout << "\nClose pairs within " << eps << " deg: " << unordered
            << " (" << result.stats.seconds << " s on the self-join)\n";

  // Pair-separation histogram in 10 radial bins — the DD(r) counts of a
  // two-point correlation estimator.
  std::vector<std::uint64_t> hist(10, 0);
  for (const auto& p : result.pairs.pairs()) {
    if (p.key >= p.value) continue;  // count each unordered pair once
    const double r = sj::euclidean_dist(cat.pt(p.key), cat.pt(p.value), 2);
    auto bin = static_cast<std::size_t>(r / eps * 10.0);
    if (bin >= hist.size()) bin = hist.size() - 1;
    ++hist[bin];
  }
  std::cout << "\nDD(r) separation histogram:\n";
  std::uint64_t peak = 1;
  for (auto c : hist) peak = std::max(peak, c);
  for (std::size_t b = 0; b < hist.size(); ++b) {
    const double lo = eps * b / 10.0;
    const double hi = eps * (b + 1) / 10.0;
    std::cout << "  [" << std::setw(6) << std::fixed << std::setprecision(3)
              << lo << ", " << std::setw(6) << hi << ")  "
              << std::setw(9) << hist[b] << "  "
              << std::string(hist[b] * 50 / peak, '#') << "\n";
  }

  // Cross-check with the Super-EGO CPU baseline (the paper validates
  // implementations against each other by neighbour totals).
  auto ego = registry.at("ego").run(cat, eps);
  std::cout << "\nValidation: SUPEREGO finds " << ego.pairs.size()
            << " ordered pairs vs GPU-SJ " << result.pairs.size()
            << (ego.pairs.size() == result.pairs.size() ? "  [match]\n"
                                                        : "  [MISMATCH]\n");
  std::cout << "SUPEREGO time: " << ego.stats.seconds
            << " s vs GPU-SJ " << result.stats.seconds << " s\n";
  return 0;
}
