// kNN-distance outlier detection using the grid-based kNN extension
// (the paper's future-work direction). A point's distance to its k-th
// nearest neighbour is the classic kNN outlier score (Ramaswamy et al.):
// isolated points score high, points inside dense structure score low.
//
// Dispatches through the unified backend registry, so any engine with
// the knn capability can score the points.
//
// A second pass cross-checks with the eps-neighbourhood COUNT score
// (points whose eps-ball holds few neighbours are outliers), computed
// with a histogram-mode self-join: per-point counts only, O(n) host
// memory, no pair set ever materialised.
//
//   ./knn_outliers [n] [k] [contamination] [algo]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 10;
  const double contamination = argc > 3 ? std::atof(argv[3]) : 0.01;
  const std::string algo = argc > 4 ? argv[4] : "gpu";

  // Dense clusters plus a sprinkling of uniform outliers.
  const auto outlier_count = static_cast<std::size_t>(n * contamination);
  std::cout << "Generating " << n - outlier_count
            << " clustered inliers + " << outlier_count
            << " uniform outliers\n";
  sj::Dataset data = sj::datagen::gaussian_mixture(
      n - outlier_count, 2, 15, 0.8, 0.0, 100.0, 31);
  const std::size_t inliers = data.size();
  const auto noise = sj::datagen::uniform(outlier_count, 2, 0.0, 100.0, 32);
  for (std::size_t i = 0; i < noise.size(); ++i) data.push_back(noise.pt(i));

  const auto& backend = sj::api::BackendRegistry::instance().at(
      algo, sj::api::Operation::kKnn);
  const auto outcome = backend.self_knn(data, k);
  const auto& r = outcome.neighbors;
  std::cout << "kNN done in " << outcome.stats.seconds << " s ["
            << backend.name() << "] (cell width "
            << outcome.stats.native_value("chosen_cell_width") << ", "
            << outcome.stats.native_value("rings_expanded") /
                   static_cast<double>(data.size())
            << " rings/query, "
            << static_cast<double>(outcome.stats.distance_calcs) /
                   static_cast<double>(data.size())
            << " candidates/query)\n";

  // Score = distance to the k-th neighbour.
  std::vector<double> score(data.size(), 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (r.count(i) > 0) score[i] = r.distance(i, r.count(i) - 1);
  }
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });

  // How many of the top-scored points are actual injected outliers?
  std::size_t hits = 0;
  for (std::size_t i = 0; i < outlier_count; ++i) {
    if (order[i] >= inliers) ++hits;
  }
  std::cout << "\nTop-" << outlier_count << " kNN-distance scores: " << hits
            << " / " << outlier_count << " injected outliers recovered ("
            << 100.0 * static_cast<double>(hits) /
                   static_cast<double>(std::max<std::size_t>(outlier_count, 1))
            << "% precision)\n";
  std::cout << "Highest score: " << score[order[0]]
            << "   median score: " << score[order[data.size() / 2]] << "\n";

  // Cross-check with the eps-neighbourhood count score. eps = the 95th
  // percentile of the k-th-neighbour distances: big enough that even
  // cluster-fringe inliers catch a few neighbours (at the median, count==1
  // ties swamp the ranking), small enough that isolated points stay empty.
  // mode=histogram returns just the n per-point counts (self included) —
  // the ~n*k pair set is never materialised.
  std::vector<double> sorted_scores = score;
  const std::size_t p95 = sorted_scores.size() * 95 / 100;
  std::nth_element(sorted_scores.begin(), sorted_scores.begin() + p95,
                   sorted_scores.end());
  const double eps = sorted_scores[p95];
  sj::api::RunConfig config;
  config.mode = sj::ResultMode::kHistogram;
  const auto& sj_backend = sj::api::BackendRegistry::instance().at(algo);
  const auto counts = sj_backend.run(data, eps, config);
  std::cout << "\nHistogram self-join (eps = " << eps << ") in "
            << counts.stats.seconds << " s: " << counts.total_pairs
            << " pairs counted, " << counts.histogram.size()
            << " counters held\n";

  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // Sparse neighbourhoods first; equal counts (the empty-ball floor of
    // count==1) fall back to the kNN-distance score so ties don't land in
    // generation order.
    if (counts.histogram[a] != counts.histogram[b]) {
      return counts.histogram[a] < counts.histogram[b];
    }
    return score[a] > score[b];
  });
  std::size_t count_hits = 0;
  for (std::size_t i = 0; i < outlier_count; ++i) {
    if (order[i] >= inliers) ++count_hits;
  }
  std::cout << "Bottom-" << outlier_count
            << " eps-neighbourhood counts: " << count_hits << " / "
            << outlier_count << " injected outliers recovered ("
            << 100.0 * static_cast<double>(count_hits) /
                   static_cast<double>(std::max<std::size_t>(outlier_count, 1))
            << "% precision)\n";
  return 0;
}
