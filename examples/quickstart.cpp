// Quickstart: the minimal end-to-end use of the unified self-join API.
//
//   ./quickstart [n] [dim] [eps] [backend]
//
// Generates a uniform dataset, resolves a backend from the registry
// (default gpu_unicomp — the paper's configuration), and prints the
// result summary plus the normalised execution statistics.
#include <cstdlib>
#include <iostream>

#include "api/registry.hpp"
#include "common/datagen.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int dim = argc > 2 ? std::atoi(argv[2]) : 2;
  const double eps = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::string backend_name = argc > 4 ? argv[4] : "gpu_unicomp";

  std::cout << "Generating " << n << " uniform points in " << dim
            << "-D on [0, 100]^" << dim << "...\n";
  const sj::Dataset data = sj::datagen::uniform(n, dim, 0.0, 100.0, 42);

  // Every engine is registered under a string key; list them like sjtool
  // does on --help.
  const auto& registry = sj::api::BackendRegistry::instance();
  std::cout << "Registered backends:";
  for (const auto& name : registry.names()) std::cout << " " << name;
  std::cout << "\n";

  const auto* lookup = registry.find(backend_name);
  if (lookup == nullptr) {
    std::cerr << "unknown backend '" << backend_name
              << "' — pick one of the names above\n";
    return 2;
  }
  const auto& backend = *lookup;
  std::cout << "Running " << backend.name() << " ("
            << backend.description() << ") with eps = " << eps << "...\n";
  const sj::api::JoinOutcome result = backend.run(data, eps);

  const auto& st = result.stats;
  std::cout << "\nResult:\n"
            << "  pairs (incl. self pairs):  " << result.pairs.size() << "\n"
            << "  avg. neighbors per point:  "
            << result.pairs.avg_neighbors(data.size()) << "\n";
  std::cout << "\nExecution breakdown:\n"
            << "  reported time:    " << st.seconds << " s\n"
            << "  end-to-end:       " << st.total_seconds << " s\n"
            << "  index build/sort: " << st.build_seconds << " s\n"
            << "  distance calcs:   " << st.distance_calcs << "\n";
  if (!st.native.empty()) {
    std::cout << "\nEngine-native stats:\n";
    for (const auto& [key, value] : st.native) {
      std::cout << "  " << key << ":  " << value << "\n";
    }
  }

  // A NeighborTable gives CSR-style access for downstream algorithms.
  const sj::NeighborTable nt(result.pairs, data.size());
  std::cout << "\nFirst point's neighborhood size: " << nt.degree(0) << "\n";
  return 0;
}
