// Quickstart: the minimal end-to-end use of the GPU self-join API.
//
//   ./quickstart [n] [dim] [eps]
//
// Generates a uniform dataset, runs GPU-SJ with UNICOMP, and prints the
// result summary plus the execution statistics the library exposes.
#include <cstdlib>
#include <iostream>

#include "common/datagen.hpp"
#include "core/self_join.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int dim = argc > 2 ? std::atoi(argv[2]) : 2;
  const double eps = argc > 3 ? std::atof(argv[3]) : 2.0;

  std::cout << "Generating " << n << " uniform points in " << dim
            << "-D on [0, 100]^" << dim << "...\n";
  const sj::Dataset data = sj::datagen::uniform(n, dim, 0.0, 100.0, 42);

  // Default options reproduce the paper's configuration: UNICOMP on,
  // 256-thread blocks, at least 3 batches over 3 streams.
  sj::GpuSelfJoin join;
  std::cout << "Running the self-join with eps = " << eps << "...\n";
  const sj::SelfJoinResult result = join.run(data, eps);

  const auto& st = result.stats;
  std::cout << "\nResult:\n"
            << "  pairs (incl. self pairs):  " << result.pairs.size() << "\n"
            << "  avg. neighbors per point:  "
            << result.pairs.avg_neighbors(data.size()) << "\n";
  std::cout << "\nExecution breakdown:\n"
            << "  total:            " << st.total_seconds << " s\n"
            << "  grid build:       " << st.index_build_seconds << " s\n"
            << "  estimate:         " << st.estimate_seconds << " s  (est. "
            << st.estimated_total << " pairs)\n"
            << "  batched join:     " << st.join_seconds << " s over "
            << st.batch.batches_run << " batches\n";
  std::cout << "\nGrid index:\n"
            << "  non-empty cells:  " << st.grid_nonempty_cells << " of "
            << st.grid_total_cells << " total grid cells\n";
  std::cout << "\nKernel work:\n"
            << "  cells examined:   " << st.metrics.cells_examined << "\n"
            << "  distance calcs:   " << st.metrics.distance_calcs << "\n"
            << "  theoretical occupancy: " << st.occupancy * 100 << "% ("
            << st.regs_per_thread << " regs/thread)\n";

  // A NeighborTable gives CSR-style access for downstream algorithms.
  const sj::NeighborTable nt(result.pairs, data.size());
  std::cout << "\nFirst point's neighborhood size: " << nt.degree(0) << "\n";
  return 0;
}
