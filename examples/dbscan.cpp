// DBSCAN clustering on top of the GPU self-join — the paper's motivating
// application ("the DBSCAN clustering algorithm requires range queries
// that search the neighborhood of all data points", Section I; the
// batching scheme itself originates from GPU-accelerated DBSCAN [29]).
//
// Uses the library's sj::apps::dbscan, which computes every point's
// eps-neighbourhood with one batched GPU self-join and clusters on the
// host.
//
//   ./dbscan [n] [eps] [minPts]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "apps/dbscan.hpp"
#include "common/datagen.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const double eps = argc > 2 ? std::atof(argv[2]) : 1.2;
  const std::size_t min_pts = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;

  // A mixture of dense blobs over a sparse uniform background: the
  // classic DBSCAN setting.
  std::cout << "Generating " << n << " points (12 Gaussian blobs + noise)\n";
  sj::Dataset data = sj::datagen::gaussian_mixture(
      static_cast<std::size_t>(n * 0.85), 2, 12, 1.2, 0.0, 100.0, 7);
  const sj::Dataset background =
      sj::datagen::uniform(n - data.size(), 2, 0.0, 100.0, 8);
  for (std::size_t i = 0; i < background.size(); ++i) {
    data.push_back(background.pt(i));
  }

  sj::apps::DbscanOptions opt;
  opt.eps = eps;
  opt.min_pts = min_pts;
  const auto r = sj::apps::dbscan(data, opt);

  std::cout << "\nDBSCAN(eps=" << eps << ", minPts=" << min_pts << "):\n"
            << "  clusters:    " << r.num_clusters << "\n"
            << "  core points: " << r.num_core << "\n"
            << "  noise:       " << r.num_noise << " points\n";

  auto sizes = r.cluster_sizes();
  std::sort(sizes.rbegin(), sizes.rend());
  std::cout << "  largest clusters:";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sizes.size()); ++i) {
    std::cout << " " << sizes[i];
  }
  std::cout << "\n\nTiming: self-join " << r.join_seconds
            << " s, cluster traversal " << r.traversal_seconds << " s\n"
            << "The neighbourhood computation dominates — exactly why the\n"
               "paper accelerates the self-join rather than the traversal.\n";
  return 0;
}
